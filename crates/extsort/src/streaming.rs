//! Incremental loser tree for merging streams that arrive over time.
//!
//! [`crate::loser_tree::LoserTree`] pulls from its sources itself, which
//! forces every input to be fully available (a file, a slice) before the
//! merge starts. The streaming exchange-merge of external PSRS has the
//! opposite shape: records for each source *trickle in* from the network
//! while the merge runs, and the merge must park — without busy-waiting or
//! buffering unboundedly — whenever the next winner's source has no data
//! yet. [`StreamingLoserTree`] inverts control: the caller feeds head
//! records in with [`StreamingLoserTree::feed`], closes exhausted sources
//! with [`StreamingLoserTree::close`], and drives output with
//! [`StreamingLoserTree::step`], which either emits the global minimum,
//! names the one source it needs a record from ([`MergeStep::Need`]), or
//! reports completion.
//!
//! The selection machinery is the same as the pull-based tree — cached
//! `sort_key()`s with the `u64::MAX` exhausted sentinel disambiguated by a
//! full-comparison fallback, iterative bottom-up build, branch-free replay,
//! ties broken by source index. Because ties break by index, the output
//! sequence depends only on the per-source record sequences, **not** on the
//! order in which chunks happened to arrive — the property the streamed
//! redistribution path relies on for byte-identical output vs the staged
//! reference.

use pdm::Record;

/// One step of an incremental merge (see [`StreamingLoserTree::step`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStep<R> {
    /// The next record of the merged output, in order.
    Emit(R),
    /// The merge cannot decide a winner until source `s` is either fed a
    /// record or closed. At most one source is ever awaited at a time.
    Need(usize),
    /// Every source is closed and drained; no more output will come.
    Done,
}

/// A k-way merge whose sources are fed by the caller (push model).
///
/// Protocol: after `new(k)`, [`Self::step`] returns [`MergeStep::Need`] for
/// each source in turn until every slot has been fed or closed; from then
/// on it emits records, pausing with `Need(s)` whenever the slot that just
/// won needs a refill. Feeding a slot that is not awaited panics — the
/// caller's buffers hold surplus records, never the tree.
#[derive(Debug)]
pub struct StreamingLoserTree<R: Record> {
    /// Current head record of each source (`None` = awaiting or closed).
    heads: Vec<Option<R>>,
    /// Cached `sort_key()` per head: `u64::MAX` when closed, 0 when the
    /// record type has no usable key.
    keys: Vec<u64>,
    /// `tree[j]` holds the loser at internal node `j`; `tree[0]` the winner.
    tree: Vec<usize>,
    /// Sources that will never be fed again.
    closed: Vec<bool>,
    /// Before the first build: which slots have been fed or closed.
    known: Vec<bool>,
    /// Monotone cursor over `known`: every slot below it has been fed or
    /// closed. Keeps the pre-build `Need` scan O(k) *total* — the naive
    /// "first unknown slot" search from the front is O(k) per step and
    /// O(k²) over the init protocol, which dominates wide merges past
    /// p ≈ 256.
    next_unknown: usize,
    /// `known[...]` probes performed by the pre-build scan — the witness
    /// the init microbench asserts grows linearly, not quadratically.
    init_probes: u64,
    /// After the build: the one slot whose head was consumed and not yet
    /// refilled (`None` when the tree is ready to select).
    pending: Option<usize>,
    k: usize,
    built: bool,
    comparisons: u64,
    produced: u64,
}

impl<R: Record> StreamingLoserTree<R> {
    /// A tree over `k` sources, all initially awaiting their first record.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a merge needs at least one source");
        StreamingLoserTree {
            heads: vec![None; k],
            keys: vec![u64::MAX; k],
            tree: vec![usize::MAX; k],
            closed: vec![false; k],
            known: vec![false; k],
            next_unknown: 0,
            init_probes: 0,
            pending: None,
            k,
            built: false,
            comparisons: 0,
            produced: 0,
        }
    }

    fn cached_key(head: &Option<R>) -> u64 {
        match head {
            Some(r) if R::HAS_SORT_KEY => r.sort_key(),
            Some(_) => 0,
            None => u64::MAX,
        }
    }

    /// Is source `s` currently awaited (a [`feed`](Self::feed) or
    /// [`close`](Self::close) for it is legal)?
    pub fn awaiting(&self, s: usize) -> bool {
        if self.built {
            self.pending == Some(s)
        } else {
            !self.known[s]
        }
    }

    /// Supplies the next record of source `s`.
    ///
    /// # Panics
    /// Panics if `s` is not the awaited slot (see [`Self::awaiting`]) —
    /// records the merge has not asked for belong in the caller's buffers.
    pub fn feed(&mut self, s: usize, r: R) {
        assert!(self.awaiting(s), "source {s} was not awaited");
        assert!(!self.closed[s], "source {s} is closed");
        self.heads[s] = Some(r);
        self.keys[s] = Self::cached_key(&self.heads[s]);
        if self.built {
            self.pending = None;
            self.replay(s);
        } else {
            self.known[s] = true;
        }
    }

    /// Declares source `s` exhausted: it will never be fed again.
    ///
    /// # Panics
    /// Panics if `s` is not the awaited slot, or already closed.
    pub fn close(&mut self, s: usize) {
        assert!(self.awaiting(s), "source {s} was not awaited");
        assert!(!self.closed[s], "source {s} is already closed");
        self.closed[s] = true;
        self.heads[s] = None;
        self.keys[s] = u64::MAX;
        if self.built {
            self.pending = None;
            self.replay(s);
        } else {
            self.known[s] = true;
        }
    }

    /// Advances the merge one step. Never blocks: when the deciding source
    /// has no head yet, returns [`MergeStep::Need`] and changes nothing.
    pub fn step(&mut self) -> MergeStep<R> {
        if !self.built {
            // `feed` accepts any unknown slot pre-build, so the cursor
            // skip-scans past slots filled out of order; it never moves
            // backwards, so the whole init costs O(k) probes.
            while self.next_unknown < self.k {
                self.init_probes += 1;
                if !self.known[self.next_unknown] {
                    return MergeStep::Need(self.next_unknown);
                }
                self.next_unknown += 1;
            }
            self.build();
            self.built = true;
        }
        if let Some(s) = self.pending {
            return MergeStep::Need(s);
        }
        let winner = self.tree[0];
        match self.heads[winner].take() {
            None => MergeStep::Done, // winner closed ⇒ every source is
            Some(r) => {
                self.produced += 1;
                if self.closed[winner] {
                    // Cannot happen (closed heads are None), but keep the
                    // invariant explicit for the optimizer-free reader.
                    unreachable!("closed source won with a live head");
                }
                self.keys[winner] = u64::MAX;
                self.pending = Some(winner);
                MergeStep::Emit(r)
            }
        }
    }

    /// Initial tournament: identical to the pull-based tree's bottom-up
    /// iterative build (O(k) comparisons, O(1) stack).
    fn build(&mut self) {
        if self.k == 1 {
            self.tree[0] = 0;
            return;
        }
        let mut winners = vec![usize::MAX; 2 * self.k];
        for (j, w) in winners[self.k..].iter_mut().enumerate() {
            *w = j;
        }
        for node in (1..self.k).rev() {
            let left = winners[2 * node];
            let right = winners[2 * node + 1];
            let (winner, loser) = if self.beats(left, right) {
                (left, right)
            } else {
                (right, left)
            };
            self.tree[node] = loser;
            winners[node] = winner;
        }
        self.tree[0] = winners[1];
    }

    /// Replays source `s`'s path to the root after its head changed.
    fn replay(&mut self, s: usize) {
        if self.k == 1 {
            self.tree[0] = 0;
            return;
        }
        let mut cand = s;
        let mut node = (s + self.k) / 2;
        while node >= 1 {
            let stored = self.tree[node];
            let stored_wins = self.beats(stored, cand);
            self.tree[node] = if stored_wins { cand } else { stored };
            cand = if stored_wins { stored } else { cand };
            if node == 1 {
                break;
            }
            node /= 2;
        }
        self.tree[0] = cand;
    }

    /// Does source `a`'s head sort before source `b`'s? Cached keys first;
    /// ties (and the `u64::MAX` live-key collision) fall back to the full
    /// `(record, index)` comparison where `None` loses to everything.
    fn beats(&mut self, a: usize, b: usize) -> bool {
        self.comparisons += 1;
        let (ka, kb) = (self.keys[a], self.keys[b]);
        if ka != kb {
            return ka < kb;
        }
        match (&self.heads[a], &self.heads[b]) {
            (Some(x), Some(y)) => (x, a) < (y, b),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Tournament selects performed so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Slot-state probes performed by the pre-build `Need` scan. Linear in
    /// the fan-in under the driver protocol (one `step` per feed).
    pub fn init_probes(&self) -> u64 {
        self.init_probes
    }

    /// Records emitted so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Number of sources.
    pub fn fan_in(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// Drives the tree from per-source queues, refilling on demand — the
    /// shape of the real exchange-merge driver, minus the network.
    fn merge_queues(inputs: Vec<Vec<u32>>) -> Vec<u32> {
        let k = inputs.len().max(1);
        let mut queues: Vec<VecDeque<u32>> = inputs.into_iter().map(VecDeque::from).collect();
        queues.resize(k, VecDeque::new());
        let mut tree = StreamingLoserTree::<u32>::new(k);
        let mut out = Vec::new();
        loop {
            match tree.step() {
                MergeStep::Emit(x) => out.push(x),
                MergeStep::Need(s) => match queues[s].pop_front() {
                    Some(x) => tree.feed(s, x),
                    None => tree.close(s),
                },
                MergeStep::Done => return out,
            }
        }
    }

    #[test]
    fn merges_sorted_queues() {
        assert_eq!(
            merge_queues(vec![vec![1, 3, 5], vec![2, 4, 6]]),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(
            merge_queues(vec![
                vec![1, 1, 8],
                vec![1, 5, 5],
                vec![0, 9],
                vec![],
                vec![5]
            ]),
            vec![0, 1, 1, 1, 5, 5, 5, 8, 9]
        );
    }

    #[test]
    fn single_source_and_empty() {
        assert_eq!(merge_queues(vec![vec![2, 4, 9]]), vec![2, 4, 9]);
        assert_eq!(
            merge_queues(vec![vec![], vec![], vec![]]),
            Vec::<u32>::new()
        );
        assert_eq!(merge_queues(vec![]), Vec::<u32>::new());
    }

    #[test]
    fn need_points_at_one_source_at_a_time() {
        let mut tree = StreamingLoserTree::<u32>::new(3);
        // Before the build, every slot is asked for exactly once.
        let mut asked = Vec::new();
        for _ in 0..3 {
            match tree.step() {
                MergeStep::Need(s) => {
                    asked.push(s);
                    tree.feed(s, 10 * (s as u32 + 1));
                }
                other => panic!("expected Need, got {other:?}"),
            }
        }
        asked.sort_unstable();
        assert_eq!(asked, vec![0, 1, 2]);
        // After an emit, only the winner is awaited.
        assert_eq!(tree.step(), MergeStep::Emit(10));
        assert!(tree.awaiting(0));
        assert!(!tree.awaiting(1));
        assert_eq!(tree.step(), MergeStep::Need(0));
        // step() without a feed is idempotent.
        assert_eq!(tree.step(), MergeStep::Need(0));
        tree.close(0);
        assert_eq!(tree.step(), MergeStep::Emit(20));
    }

    #[test]
    #[should_panic(expected = "was not awaited")]
    fn feeding_unawaited_source_panics() {
        let mut tree = StreamingLoserTree::<u32>::new(2);
        tree.feed(0, 1);
        tree.feed(0, 2); // slot 0 already known, slot 1 is the awaited one
    }

    #[test]
    fn close_before_first_record() {
        // Sources may close without ever producing: the all-empty-partition
        // case of a skewed redistribution.
        let mut tree = StreamingLoserTree::<u32>::new(2);
        tree.close(0);
        tree.feed(1, 7);
        assert_eq!(tree.step(), MergeStep::Emit(7));
        assert_eq!(tree.step(), MergeStep::Need(1));
        tree.close(1);
        assert_eq!(tree.step(), MergeStep::Done);
        assert_eq!(tree.produced(), 1);
    }

    #[test]
    fn output_independent_of_feed_timing() {
        // Same per-source sequences, different interleavings of availability
        // (simulated by how many records are queued when asked) must give
        // identical output — the determinism the differential test rests on.
        let inputs = vec![vec![7u32; 10], vec![7; 10], vec![5, 7, 9]];
        let a = merge_queues(inputs.clone());
        // Second run: drain via a driver that feeds eagerly where possible.
        let k = inputs.len();
        let mut queues: Vec<VecDeque<u32>> =
            inputs.clone().into_iter().map(VecDeque::from).collect();
        let mut tree = StreamingLoserTree::<u32>::new(k);
        let mut out = Vec::new();
        loop {
            match tree.step() {
                MergeStep::Emit(x) => out.push(x),
                MergeStep::Need(s) => match queues[s].pop_front() {
                    Some(x) => tree.feed(s, x),
                    None => tree.close(s),
                },
                MergeStep::Done => break,
            }
        }
        assert_eq!(a, out);
        let mut expect: Vec<u32> = inputs.concat();
        expect.sort_unstable();
        assert_eq!(a, expect);
    }

    #[test]
    fn max_key_not_confused_with_closed() {
        // u64::MAX is a valid live key; the sentinel collision must resolve
        // through the full comparison, exactly like the pull-based tree.
        let out = merge_queues_u64(vec![
            vec![1u64, u64::MAX, u64::MAX],
            vec![u64::MAX],
            vec![0, 2, u64::MAX - 1],
        ]);
        let mut expect = vec![1u64, u64::MAX, u64::MAX, u64::MAX, 0, 2, u64::MAX - 1];
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    fn merge_queues_u64(inputs: Vec<Vec<u64>>) -> Vec<u64> {
        let k = inputs.len();
        let mut queues: Vec<VecDeque<u64>> = inputs.into_iter().map(VecDeque::from).collect();
        let mut tree = StreamingLoserTree::<u64>::new(k);
        let mut out = Vec::new();
        loop {
            match tree.step() {
                MergeStep::Emit(x) => out.push(x),
                MergeStep::Need(s) => match queues[s].pop_front() {
                    Some(x) => tree.feed(s, x),
                    None => tree.close(s),
                },
                MergeStep::Done => return out,
            }
        }
    }

    #[test]
    fn matches_pull_based_tree_on_random_runs() {
        use crate::stream::SliceStream;
        use crate::LoserTree;
        // A cheap LCG builds k sorted runs; both trees must agree exactly.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for k in [2usize, 3, 5, 8] {
            let inputs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let len = (rand() % 40) as usize;
                    let mut v: Vec<u32> = (0..len).map(|_| (rand() % 50) as u32).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let sources: Vec<_> = inputs.clone().into_iter().map(SliceStream::new).collect();
            let mut pull = LoserTree::new(sources).unwrap();
            let mut expect = Vec::new();
            while let Some(x) = pull.next_record().unwrap() {
                expect.push(x);
            }
            assert_eq!(merge_queues(inputs), expect, "fan-in {k}");
        }
    }

    #[test]
    fn init_scan_is_sub_quadratic() {
        // Drive only the init protocol (step → Need → feed, one step per
        // feed) and count slot probes. The cursor makes this ~2k; the old
        // scan-from-zero was k(k+1)/2, i.e. a 256× jump from k=64 to
        // k=1024 instead of 16×.
        fn init_probes_for(k: usize) -> u64 {
            let mut tree = StreamingLoserTree::<u32>::new(k);
            let mut fed = 0usize;
            while fed < k {
                match tree.step() {
                    MergeStep::Need(s) => {
                        tree.feed(s, s as u32);
                        fed += 1;
                    }
                    other => panic!("expected Need during init, got {other:?}"),
                }
            }
            // The build fires on the step after the last feed.
            assert!(matches!(tree.step(), MergeStep::Emit(_)));
            assert_eq!(
                tree.comparisons(),
                k as u64 - 1,
                "build is one select per internal node"
            );
            tree.init_probes()
        }
        let small = init_probes_for(64);
        let large = init_probes_for(1024);
        assert!(small >= 64, "every slot probed at least once, got {small}");
        let ratio = large as f64 / small as f64;
        assert!(
            ratio < 64.0,
            "init probes must grow sub-quadratically: {small} @64 vs {large} @1024 (ratio {ratio})"
        );
    }

    #[test]
    fn init_cursor_skips_out_of_order_feeds() {
        // Pre-build, feed() accepts any unknown slot; feeding in reverse
        // forces the cursor to skip-scan the whole prefix in one step.
        let k = 8;
        let mut tree = StreamingLoserTree::<u32>::new(k);
        for s in (0..k).rev() {
            tree.feed(s, s as u32);
        }
        assert_eq!(tree.step(), MergeStep::Emit(0));
        assert_eq!(tree.init_probes(), k as u64);
    }

    #[test]
    fn comparison_count_is_logarithmic() {
        let k = 16usize;
        let inputs: Vec<Vec<u32>> = (0..k)
            .map(|s| (0..64).map(|i| (i * k + s) as u32).collect())
            .collect();
        let mut queues: Vec<VecDeque<u32>> = inputs.into_iter().map(VecDeque::from).collect();
        let mut tree = StreamingLoserTree::<u32>::new(k);
        let mut n = 0u64;
        loop {
            match tree.step() {
                MergeStep::Emit(_) => n += 1,
                MergeStep::Need(s) => match queues[s].pop_front() {
                    Some(x) => tree.feed(s, x),
                    None => tree.close(s),
                },
                MergeStep::Done => break,
            }
        }
        assert_eq!(n, 1024);
        assert_eq!(tree.produced(), 1024);
        let per_record = tree.comparisons() as f64 / n as f64;
        assert!(
            per_record <= 5.5,
            "expected ~log2(16) selects, got {per_record}"
        );
    }
}
