//! Range-partitioned parallel k-way merge.
//!
//! Splits one k-way merge of sorted on-disk segments into `W` disjoint
//! slices of the *output* and runs the existing loser tree over each slice
//! on its own thread. The slices are chosen by exact rank selection in the
//! total order `(sort_key, segment index, position)` — precisely the order
//! the sequential tree emits records in (equal cached keys fall back to the
//! full `(record, source)` comparison, and for `KEY_IS_TOTAL` records equal
//! keys mean equal records, so source order *is* position order). Each
//! worker therefore produces a contiguous byte range of the sequential
//! output, and stitching the workers back together in index order yields a
//! byte-identical result for every worker count.
//!
//! **Splitter probes.** Cut positions are found by a multi-sequence
//! selection: repeatedly probe the median record of each segment's
//! candidate interval (a metered *random* read via [`BlockReader::read_at`]),
//! take the weighted median of those probes as a pivot, and rank the pivot
//! in every interval by binary search. Each round retires at least a
//! quarter of the remaining candidates, so one cut costs `O(k · log² n)`
//! probes — and because consecutive probes land in the same cached block
//! more often than not, the *metered* probe count stays near
//! `k · ⌈log₂ blocks⌉` per cut (asserted by a regression test).
//!
//! **Metering invariance.** Workers read their slice of each segment
//! through pooled block readers. A worker whose slice starts mid-block
//! first faults that boundary block in with a metered random read (the
//! predecessor worker also reads it, sequentially); a worker whose slice
//! starts on a block boundary streams from there directly. Summed over all
//! workers this makes `blocks_read − random_reads` and
//! `bytes_read − seek_bytes` *identical* to the one-worker merge, which is
//! what the differential suite asserts. Output order (and therefore every
//! write-side counter) is unchanged by construction.

use std::sync::mpsc::sync_channel;
use std::time::Instant;

use pdm::{BlockReader, BufferPool, Disk, PdmResult, Record};

use crate::config::PipelineConfig;
use crate::kernel::SortKernel;
use crate::loser_tree::LoserTree;
use crate::stream::Bounded;

/// Hard cap on merge workers (also sizes the static span-name table).
pub const MAX_MERGE_WORKERS: usize = 8;

/// Records per batch shipped from a merge worker to the writer thread.
const BATCH_RECORDS: usize = 1024;

/// Batches each worker may queue ahead of the writer (backpressure bound).
const QUEUE_BATCHES: usize = 4;

/// Static span names so worker spans need no allocation (`record_span`
/// takes `&'static str`); mirrors the run-formation `chunk-sort-N` table.
fn worker_span_name(w: usize) -> &'static str {
    const NAMES: [&str; MAX_MERGE_WORKERS] = [
        "merge.worker-0",
        "merge.worker-1",
        "merge.worker-2",
        "merge.worker-3",
        "merge.worker-4",
        "merge.worker-5",
        "merge.worker-6",
        "merge.worker-7",
    ];
    NAMES.get(w).copied().unwrap_or("merge.worker")
}

/// One sorted input to the merge: `len` records of `file` starting at
/// record index `offset`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSegment {
    /// File name on the disk.
    pub file: String,
    /// First record of the segment (record index, not bytes).
    pub offset: u64,
    /// Records in the segment.
    pub len: u64,
    /// The records before `offset` were already streamed by an earlier merge
    /// (polyphase consumes a tape across many steps). A resumed segment that
    /// starts mid-block faults its first block in as a metered *random*
    /// read — the sequential baseline read that block once already, so
    /// streaming into it again would inflate the sequential counters.
    pub resume: bool,
}

impl MergeSegment {
    /// Convenience constructor (`resume` off: a standalone merge whose
    /// baseline also opens a fresh reader at `offset`).
    pub fn new(file: impl Into<String>, offset: u64, len: u64) -> Self {
        MergeSegment {
            file: file.into(),
            offset,
            len,
            resume: false,
        }
    }

    /// Marks whether this segment resumes a partially-consumed stream.
    #[must_use]
    pub fn resumed(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// A whole file as one segment.
    pub fn whole_file<R: Record>(disk: &Disk, name: &str) -> PdmResult<Self> {
        Ok(MergeSegment::new(name, 0, disk.len_records::<R>(name)?))
    }
}

/// The cut table produced by [`plan_cuts`]: `cuts[w][s]` is how many
/// records of segment `s` belong to workers `< w`, so worker `w` merges
/// `[cuts[w][s], cuts[w+1][s])` of every segment. Row `0` is all zeros and
/// row `W` is the segment lengths.
#[derive(Debug, Clone)]
pub struct MergePlan {
    /// Per-boundary, per-segment cut positions (`W + 1` rows).
    pub cuts: Vec<Vec<u64>>,
    /// Total records across all segments.
    pub total: u64,
}

impl MergePlan {
    /// Number of workers the plan was computed for.
    pub fn workers(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Records assigned to worker `w`.
    pub fn worker_records(&self, w: usize) -> u64 {
        self.cuts[w + 1]
            .iter()
            .zip(&self.cuts[w])
            .map(|(b, a)| b - a)
            .sum()
    }
}

/// Resolves the worker count an upcoming merge will actually use.
///
/// Returns 1 (sequential loser tree) unless the configuration asks for more
/// *and* the record type's `sort_key` is a total order (range cuts reproduce
/// the sequential tie-break only when equal keys mean equal records) *and*
/// the merge is big enough to split. Capped at [`MAX_MERGE_WORKERS`].
///
/// An *advisory* worker count (set via
/// [`PipelineConfig::with_advisory_merge_workers`] or
/// [`PipelineConfig::adaptive`]) is a *ceiling*, not an order: the planner
/// prices every candidate in `1..=w` with the device's contention model
/// ([`crate::planner::choose_merge_workers`]) — splitter-probe seeks plus
/// queue wait at the candidate's stream count versus the CPU the extra
/// workers save — and picks the cheapest. Because the sequential merge is
/// always a candidate, an adaptive plan can never price worse than it; on
/// hardware like the paper's SCSI drives (queue depth 1) that means falling
/// back to 1 worker and bumping `merge.planner.seq_fallback`. Explicit
/// counts ([`PipelineConfig::with_merge_workers`]) are always honoured.
pub fn planned_workers<R: Record>(
    disk: &Disk,
    pipeline: &PipelineConfig,
    fan_in: usize,
    records: u64,
    kernel: SortKernel,
) -> usize {
    let w = pipeline.effective_merge_workers().min(MAX_MERGE_WORKERS);
    if w <= 1 || !R::HAS_SORT_KEY || !R::KEY_IS_TOTAL || fan_in < 2 || records < 2 * w as u64 {
        return 1;
    }
    if pipeline.merge_workers_explicit {
        return w;
    }
    let shape = crate::planner::MergeShape {
        fan_in,
        records,
        record_size: R::SIZE,
        block_bytes: disk.block_bytes(),
        key_based: kernel.key_based::<R>(),
    };
    let chosen = crate::planner::choose_merge_workers(
        disk.model(),
        &crate::planner::CpuCost::default(),
        &shape,
        w,
        pipeline.enabled,
    );
    obs::counter_add("merge.planner.plans", 1);
    obs::gauge_set("merge.planner.chosen_workers", chosen as f64);
    if chosen == 1 {
        obs::counter_add("merge.planner.seq_fallback", 1);
    }
    chosen
}

/// Whether a random block access on `disk` is priced at more than twice a
/// sequential transfer of the same size. In that regime the planner treats
/// splitter probes (all random reads) as a predicted net loss for advisory
/// parallel-merge requests: `scsi_2000` at 32 KiB blocks sits near 4.5×,
/// `nvme_modern` near 1.4×.
pub fn seek_dominated(disk: &Disk) -> bool {
    let bytes = disk.block_bytes() as u64;
    let model = disk.model();
    model.random_block(bytes) > model.sequential_block(bytes) * 2.0
}

/// A probing cursor over one segment (random reads, pooled buffer).
///
/// Probes dedupe at *block* granularity: the first probe into a block is a
/// metered random read, after which every key in that block is cached (the
/// block is buffered, so harvesting the rest of it is free). The metered
/// probe count of a whole cut computation is therefore the number of
/// distinct blocks its binary-search paths touch — logarithmic in the
/// segment's block count — rather than the number of record probes.
struct Prober<R: Record> {
    rd: BlockReader<R>,
    offset: u64,
    len: u64,
    /// Records per block of the underlying file.
    rpb: u64,
    /// Absolute record position → cached `sort_key`.
    keys: std::collections::HashMap<u64, u64>,
}

impl<R: Record> Prober<R> {
    /// `sort_key` of the segment's `i`-th record (one metered random read
    /// per distinct block, free afterwards).
    fn key(&mut self, i: u64) -> PdmResult<u64> {
        debug_assert!(i < self.len);
        let pos = self.offset + i;
        if let Some(&k) = self.keys.get(&pos) {
            return Ok(k);
        }
        let k = self.rd.read_at(pos)?.sort_key(); // meters the block fault
        self.keys.insert(pos, k);
        // The block is buffered now — harvest every in-segment key in it
        // with unmetered reads.
        let blk = pos / self.rpb;
        let lo = (blk * self.rpb).max(self.offset);
        let hi = ((blk + 1) * self.rpb).min(self.offset + self.len);
        for p in lo..hi {
            if p != pos {
                let kp = self.rd.read_at(p)?.sort_key();
                self.keys.insert(p, kp);
            }
        }
        Ok(k)
    }
}

/// Computes the cut table for `workers` over `segments` by exact rank
/// selection: boundary `w` is the global rank `⌊total·w/W⌋` position in the
/// `(sort_key, segment, position)` order. Exposed for the balance and
/// probe-bound tests.
pub fn plan_cuts<R: Record>(
    disk: &Disk,
    segments: &[MergeSegment],
    workers: usize,
    pool: &BufferPool,
) -> PdmResult<MergePlan> {
    let total: u64 = segments.iter().map(|s| s.len).sum();
    let rpb = (disk.block_bytes() / R::SIZE).max(1) as u64;
    let mut probers = Vec::with_capacity(segments.len());
    for seg in segments {
        probers.push(Prober::<R> {
            rd: disk.open_reader_pooled::<R>(&seg.file, Some(pool.clone()))?,
            offset: seg.offset,
            len: seg.len,
            rpb,
            keys: std::collections::HashMap::new(),
        });
    }
    let mut cuts = Vec::with_capacity(workers + 1);
    cuts.push(vec![0u64; segments.len()]);
    for w in 1..workers {
        let target = ((total as u128 * w as u128) / workers as u128) as u64;
        cuts.push(select_cut(&mut probers, target)?);
    }
    cuts.push(segments.iter().map(|s| s.len).collect());
    Ok(MergePlan { cuts, total })
}

/// Per-segment positions of the global rank-`target` boundary: exactly
/// `target` records order before the returned cut in the
/// `(sort_key, segment, position)` total order.
fn select_cut<R: Record>(probers: &mut [Prober<R>], target: u64) -> PdmResult<Vec<u64>> {
    let k = probers.len();
    let mut lo = vec![0u64; k];
    let mut hi: Vec<u64> = probers.iter().map(|p| p.len).collect();
    // Records still to take from the remaining intervals `[lo, hi)`;
    // everything before `lo` is already below the cut.
    let mut t = target;
    loop {
        let sizes: Vec<u64> = lo.iter().zip(&hi).map(|(a, b)| b - a).collect();
        let remaining: u64 = sizes.iter().sum();
        if t == 0 {
            return Ok(lo);
        }
        if t >= remaining {
            return Ok(hi);
        }
        // Probe the median of every non-empty interval; the weighted median
        // of the probes (weight = interval size) retires ≥ ~¼ of the
        // candidates per round.
        let mut cands: Vec<(u64, usize, u64)> = Vec::with_capacity(k);
        for (i, p) in probers.iter_mut().enumerate() {
            if sizes[i] > 0 {
                let m = lo[i] + (sizes[i] - 1) / 2;
                cands.push((p.key(m)?, i, m));
            }
        }
        cands.sort_unstable();
        let half = remaining / 2;
        let mut acc = 0u64;
        let mut pivot = cands[cands.len() - 1];
        for &c in &cands {
            acc += sizes[c.1];
            if acc > half {
                pivot = c;
                break;
            }
        }
        // Rank the pivot in every interval (records ordering before it).
        let mut below = 0u64;
        let mut ranks = vec![0u64; k];
        for (i, p) in probers.iter_mut().enumerate() {
            ranks[i] = if sizes[i] == 0 {
                lo[i]
            } else {
                lower_bound(p, lo[i], hi[i], pivot, i)?
            };
            below += ranks[i] - lo[i];
        }
        if t <= below {
            // The cut lies entirely among records below the pivot.
            hi = ranks;
        } else {
            // Everything below the pivot — and the pivot itself — is below
            // the cut.
            t -= below + 1;
            lo = ranks;
            lo[pivot.1] = pivot.2 + 1;
        }
    }
}

/// First position in `[lo, hi)` of `probers[seg]` whose
/// `(key, segment, position)` is ≥ `pivot`.
fn lower_bound<R: Record>(
    p: &mut Prober<R>,
    mut lo: u64,
    mut hi: u64,
    pivot: (u64, usize, u64),
    seg: usize,
) -> PdmResult<u64> {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let key = p.key(mid)?;
        if (key, seg, mid) < pivot {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// What a parallel merge did, for billing and reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelMergeOutcome {
    /// Records emitted (sum over workers).
    pub records: u64,
    /// Loser-tree selects, summed over workers. *Not* equal to the
    /// sequential tree's count (each worker's tree has its own fan-in and
    /// priming); callers must not difference this across worker counts.
    pub comparisons: u64,
    /// Workers actually used.
    pub workers: usize,
    /// Metered random reads spent planning the cuts (splitter probes).
    pub probe_random_reads: u64,
    /// Bytes transferred by those probes.
    pub probe_seek_bytes: u64,
}

/// Merges `segments` with `workers` range-partitioned loser trees, feeding
/// merged batches to `emit` strictly in output order. The caller owns the
/// output (a pooled writer, a write-behind writer, a polyphase tape…), so
/// this works at every merge call site.
///
/// Workers ship batches over bounded channels; the calling thread drains
/// worker 0 to exhaustion, then worker 1, and so on — the channel *is* the
/// reorder buffer, since each worker's output is one contiguous slice of
/// the final sequence.
pub fn parallel_merge_segments<R, F>(
    disk: &Disk,
    segments: &[MergeSegment],
    workers: usize,
    pool: &BufferPool,
    mut emit: F,
) -> PdmResult<ParallelMergeOutcome>
where
    R: Record,
    F: FnMut(&[R]) -> PdmResult<()>,
{
    let w = workers.clamp(1, MAX_MERGE_WORKERS);
    let probe_before = disk.stats().snapshot();
    let plan = if w > 1 {
        plan_cuts::<R>(disk, segments, w, pool)?
    } else {
        // One worker takes everything; no probes.
        MergePlan {
            cuts: vec![
                vec![0; segments.len()],
                segments.iter().map(|s| s.len).collect(),
            ],
            total: segments.iter().map(|s| s.len).sum(),
        }
    };
    let probes = disk.stats().snapshot().delta(&probe_before);

    let rpb = (disk.block_bytes() / R::SIZE).max(1) as u64;
    let node_obs = obs::current();
    let traced = node_obs.is_enabled();
    let wall_base = node_obs.elapsed();
    let epoch = Instant::now();

    let mut total_records = 0u64;
    let mut total_blocks = 0u64;
    let mut comparisons = 0u64;
    let mut spans: Vec<(usize, f64, f64)> = Vec::new();

    // Blocks each worker's ranges span (for the obs counter).
    for wi in 0..w {
        total_blocks += segments
            .iter()
            .enumerate()
            .map(|(s, seg)| {
                let (a, b) = (plan.cuts[wi][s], plan.cuts[wi + 1][s]);
                if a < b {
                    (seg.offset + b - 1) / rpb - (seg.offset + a) / rpb + 1
                } else {
                    0
                }
            })
            .sum::<u64>();
    }

    if w == 1 {
        // Inline fast path: no threads, no channels — identical tree, so the
        // select count matches a sequential merge of the same views exactly.
        let t0 = epoch.elapsed().as_secs_f64();
        let ranges: Vec<(u64, u64)> = (0..segments.len())
            .map(|s| (plan.cuts[0][s], plan.cuts[1][s]))
            .collect();
        let mut err = None;
        let mut sink = |batch: Vec<R>| -> bool {
            total_records += batch.len() as u64;
            match emit(&batch) {
                Ok(()) => true,
                Err(e) => {
                    err = Some(e);
                    false
                }
            }
        };
        let comps = run_range_worker::<R>(disk, segments, pool, rpb, &ranges, &mut sink)?;
        if let Some(e) = err {
            return Err(e);
        }
        comparisons = comps;
        if traced {
            spans.push((0, t0, epoch.elapsed().as_secs_f64()));
        }
    } else {
        std::thread::scope(|scope| -> PdmResult<()> {
            let mut handles = Vec::with_capacity(w);
            for wi in 0..w {
                let ranges: Vec<(u64, u64)> = (0..segments.len())
                    .map(|s| (plan.cuts[wi][s], plan.cuts[wi + 1][s]))
                    .collect();
                let (tx, rx) = sync_channel::<Vec<R>>(QUEUE_BATCHES);
                let handle = std::thread::Builder::new()
                    .name(format!("merge-worker-{wi}"))
                    .spawn_scoped(scope, move || -> PdmResult<(u64, f64, f64)> {
                        let t0 = epoch.elapsed().as_secs_f64();
                        let mut sink = |batch: Vec<R>| tx.send(batch).is_ok();
                        let comps =
                            run_range_worker::<R>(disk, segments, pool, rpb, &ranges, &mut sink)?;
                        Ok((comps, t0, epoch.elapsed().as_secs_f64()))
                    })
                    .expect("spawn merge worker");
                handles.push((wi, rx, handle));
            }
            // Drain workers strictly in index order: worker w's slice
            // precedes worker w+1's in the output.
            for (wi, rx, handle) in handles {
                for batch in rx.iter() {
                    emit(&batch)?;
                    total_records += batch.len() as u64;
                }
                let (comps, t0, t1) = handle.join().expect("merge worker panicked")?;
                comparisons += comps;
                if traced {
                    spans.push((wi, t0, t1));
                }
            }
            Ok(())
        })?;
    }

    if traced {
        for &(wi, t0, t1) in &spans {
            node_obs.record_span(
                worker_span_name(wi),
                obs::SpanKind::Task,
                wall_base + t0,
                wall_base + t1,
                None,
            );
            node_obs.hist_record("extsort.parmerge.worker_us", ((t1 - t0) * 1e6) as u64);
        }
        node_obs.counter_add("merge.range.records", total_records);
        node_obs.counter_add("merge.range.blocks", total_blocks);
    }

    Ok(ParallelMergeOutcome {
        records: total_records,
        comparisons,
        workers: w,
        probe_random_reads: probes.random_reads,
        probe_seek_bytes: probes.seek_bytes,
    })
}

/// One worker's merge body: open a pooled reader per non-empty range
/// (applying the boundary-block metering rule), run a loser tree over the
/// bounded views, and hand off records in batches through `sink` (which
/// returns `false` when the consumer has bailed).
fn run_range_worker<R: Record>(
    disk: &Disk,
    segments: &[MergeSegment],
    pool: &BufferPool,
    rpb: u64,
    ranges: &[(u64, u64)],
    sink: &mut dyn FnMut(Vec<R>) -> bool,
) -> PdmResult<u64> {
    let mut readers: Vec<(BlockReader<R>, u64)> = Vec::new();
    for (s, seg) in segments.iter().enumerate() {
        let (a, b) = ranges[s];
        if a >= b {
            continue;
        }
        let mut rd = disk.open_reader_pooled::<R>(&seg.file, Some(pool.clone()))?;
        let start = seg.offset + a;
        rd.seek(start);
        if (a > 0 || seg.resume) && start % rpb != 0 {
            // Mid-block boundary: whoever streamed the records before
            // `start` (the predecessor worker, or — for a resumed segment —
            // an earlier merge step) already read this block sequentially,
            // so fault it in as a metered *random* read. The extra transfer
            // lands in `random_reads`/`seek_bytes`, keeping the sequential
            // counters worker-count-invariant.
            rd.read_at(start)?;
        }
        readers.push((rd, b - a));
    }
    let mut views = Vec::with_capacity(readers.len());
    for (rd, n) in readers.iter_mut() {
        views.push(Bounded::new(rd, *n));
    }
    let mut tree = LoserTree::new(views)?;
    let mut batch: Vec<R> = Vec::with_capacity(BATCH_RECORDS);
    while let Some(x) = tree.next_record()? {
        batch.push(x);
        if batch.len() >= BATCH_RECORDS {
            let full = std::mem::replace(&mut batch, Vec::with_capacity(BATCH_RECORDS));
            if !sink(full) {
                break; // consumer bailed on an I/O error
            }
        }
    }
    if !batch.is_empty() {
        let _ = sink(batch);
    }
    Ok(tree.comparisons())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segments_for(disk: &Disk, runs: &[Vec<u32>]) -> Vec<MergeSegment> {
        runs.iter()
            .enumerate()
            .map(|(i, r)| {
                let name = format!("seg{i}");
                disk.write_file(&name, r).unwrap();
                MergeSegment::new(name, 0, r.len() as u64)
            })
            .collect()
    }

    fn merged(disk: &Disk, segs: &[MergeSegment], workers: usize) -> Vec<u32> {
        let pool = BufferPool::default();
        let mut out = Vec::new();
        parallel_merge_segments::<u32, _>(disk, segs, workers, &pool, |batch| {
            out.extend_from_slice(batch);
            Ok(())
        })
        .unwrap();
        out
    }

    #[test]
    fn matches_sequential_for_every_worker_count() {
        let disk = Disk::in_memory(64);
        let runs: Vec<Vec<u32>> = vec![
            (0..500).map(|i| i * 3).collect(),
            (0..300).map(|i| i * 5).collect(),
            vec![7; 200],
            (0..100).rev().map(|i| 1000 - i).collect(),
        ];
        let segs = segments_for(&disk, &runs);
        let mut expect: Vec<u32> = runs.concat();
        expect.sort_unstable();
        for w in [1, 2, 3, 4, 8] {
            assert_eq!(merged(&disk, &segs, w), expect, "workers={w}");
        }
    }

    #[test]
    fn plan_balances_heavy_duplicates() {
        let disk = Disk::in_memory(64);
        // All-equal keys: positional selection must still split evenly.
        let runs: Vec<Vec<u32>> = vec![vec![42; 997], vec![42; 503], vec![42; 250]];
        let segs = segments_for(&disk, &runs);
        let pool = BufferPool::default();
        for w in [2usize, 3, 4, 8] {
            let plan = plan_cuts::<u32>(&disk, &segs, w, &pool).unwrap();
            let cap = plan.total.div_ceil(w as u64);
            for wi in 0..w {
                assert!(
                    plan.worker_records(wi) <= cap,
                    "worker {wi} of {w} got {} > {cap}",
                    plan.worker_records(wi)
                );
            }
            let sum: u64 = (0..w).map(|wi| plan.worker_records(wi)).sum();
            assert_eq!(sum, plan.total);
        }
    }

    #[test]
    fn cut_rows_are_monotone() {
        let disk = Disk::in_memory(64);
        let runs: Vec<Vec<u32>> = (0..5)
            .map(|s| (0..200u32).map(|i| i * 5 + s).collect())
            .collect();
        let segs = segments_for(&disk, &runs);
        let pool = BufferPool::default();
        let plan = plan_cuts::<u32>(&disk, &segs, 4, &pool).unwrap();
        for w in 0..4 {
            for s in 0..segs.len() {
                assert!(plan.cuts[w][s] <= plan.cuts[w + 1][s]);
            }
        }
    }

    #[test]
    fn planned_workers_gates() {
        // The default in-memory disk prices I/O like the paper's SCSI
        // drives — an explicit worker count must be honoured regardless.
        let disk = Disk::in_memory(64);
        let par = PipelineConfig::off().with_merge_workers(4);
        assert_eq!(
            planned_workers::<u32>(&disk, &par, 8, 1 << 20, SortKernel::Comparison),
            4
        );
        // Sequential by default.
        assert_eq!(
            planned_workers::<u32>(
                &disk,
                &PipelineConfig::off(),
                8,
                1 << 20,
                SortKernel::Comparison
            ),
            1
        );
        // Too few records to split.
        assert_eq!(
            planned_workers::<u32>(&disk, &par, 8, 7, SortKernel::Comparison),
            1
        );
        // Single input stream: a range split buys nothing over the tree.
        assert_eq!(
            planned_workers::<u32>(&disk, &par, 1, 1 << 20, SortKernel::Comparison),
            1
        );
        // Keys that are not a total order cannot reproduce the sequential
        // tie-break from positional cuts.
        assert_eq!(
            planned_workers::<pdm::record::KeyPayload>(
                &disk,
                &par,
                8,
                1 << 20,
                SortKernel::Comparison
            ),
            1
        );
        // Cap.
        let wide = PipelineConfig::off().with_merge_workers(64);
        assert_eq!(
            planned_workers::<u32>(&disk, &wide, 8, 1 << 20, SortKernel::Comparison),
            MAX_MERGE_WORKERS
        );
    }

    #[test]
    fn advisory_workers_respect_the_seek_cliff() {
        use pdm::DiskModel;
        let scsi = Disk::in_memory(32 * 1024).with_model(DiskModel::scsi_2000());
        let nvme = Disk::in_memory(32 * 1024).with_model(DiskModel::nvme_modern());
        assert!(seek_dominated(&scsi), "SCSI must read as seek-dominated");
        assert!(!seek_dominated(&nvme), "NVMe must not");

        let advisory = PipelineConfig::off().with_advisory_merge_workers(4);
        // On seek-dominated hardware the advisory request falls back to the
        // sequential tree; on NVMe it goes parallel.
        assert_eq!(
            planned_workers::<u32>(&scsi, &advisory, 8, 1 << 20, SortKernel::Comparison),
            1
        );
        assert_eq!(
            planned_workers::<u32>(&nvme, &advisory, 8, 1 << 20, SortKernel::Comparison),
            4
        );
        // An explicit order overrides the veto on the same hardware.
        let explicit = PipelineConfig::off().with_merge_workers(4);
        assert_eq!(
            planned_workers::<u32>(&scsi, &explicit, 8, 1 << 20, SortKernel::Comparison),
            4
        );
    }

    #[test]
    fn seq_fallback_counter_fires_on_scsi_and_stays_silent_on_nvme() {
        use pdm::DiskModel;
        let advisory = PipelineConfig::off().with_advisory_merge_workers(4);

        let scsi_obs = obs::Obs::enabled();
        {
            let _g = obs::install(scsi_obs.clone());
            let scsi = Disk::in_memory(32 * 1024).with_model(DiskModel::scsi_2000());
            assert_eq!(
                planned_workers::<u32>(&scsi, &advisory, 8, 1 << 20, SortKernel::Comparison),
                1
            );
        }
        let scsi_node = scsi_obs.finish(0, "scsi".to_string());
        assert_eq!(
            scsi_node.metrics.counters.get("merge.planner.seq_fallback"),
            Some(&1),
            "the planner must record its retreat to the sequential merge"
        );
        assert_eq!(
            scsi_node.metrics.counters.get("merge.planner.plans"),
            Some(&1)
        );
        assert_eq!(
            scsi_node.metrics.gauges.get("merge.planner.chosen_workers"),
            Some(&1.0)
        );

        let nvme_obs = obs::Obs::enabled();
        {
            let _g = obs::install(nvme_obs.clone());
            let nvme = Disk::in_memory(32 * 1024).with_model(DiskModel::nvme_modern());
            assert_eq!(
                planned_workers::<u32>(&nvme, &advisory, 8, 1 << 20, SortKernel::Comparison),
                4
            );
        }
        let nvme_node = nvme_obs.finish(0, "nvme".to_string());
        assert_eq!(
            nvme_node.metrics.counters.get("merge.planner.seq_fallback"),
            None,
            "no fallback on a deep-queue device"
        );
        assert_eq!(
            nvme_node.metrics.gauges.get("merge.planner.chosen_workers"),
            Some(&4.0)
        );
    }

    #[test]
    fn non_seek_io_is_worker_count_invariant() {
        for block_bytes in [64usize, 256, 1024] {
            let disk = Disk::in_memory(block_bytes);
            let runs: Vec<Vec<u32>> = (0..6)
                .map(|s| (0..777u32).map(|i| i * 6 + s).collect())
                .collect();
            let segs = segments_for(&disk, &runs);
            let mut baseline = None;
            for w in [1usize, 2, 4] {
                let before = disk.stats().snapshot();
                let out = merged(&disk, &segs, w);
                let d = disk.stats().snapshot().delta(&before);
                assert_eq!(out.len(), 6 * 777);
                let seq_reads = (d.blocks_read - d.random_reads, d.bytes_read - d.seek_bytes);
                match baseline {
                    None => baseline = Some(seq_reads),
                    Some(b) => assert_eq!(
                        seq_reads, b,
                        "non-seek reads changed at workers={w}, block={block_bytes}"
                    ),
                }
            }
        }
    }

    #[test]
    fn probe_reads_stay_logarithmic() {
        let disk = Disk::in_memory(64); // 16 records per block
        let n = 4096u32;
        let runs: Vec<Vec<u32>> = vec![
            (0..n).map(|i| i * 2).collect(),
            (0..n).map(|i| i * 2 + 1).collect(),
        ];
        let segs = segments_for(&disk, &runs);
        let pool = BufferPool::default();
        let out = parallel_merge_segments::<u32, _>(&disk, &segs, 2, &pool, |_| Ok(())).unwrap();
        // One cut over `runs` inputs, each spanning `blocks` blocks: the
        // binary-search probe paths touch at most ⌈log2 blocks⌉ distinct
        // blocks per run (metered reads dedupe within the buffered block).
        let blocks = (n as u64 * 4).div_ceil(64);
        let bound = runs.len() as u64 * (blocks as f64).log2().ceil() as u64;
        assert!(
            out.probe_random_reads <= bound,
            "probes {} exceed runs×⌈log2 blocks⌉ = {bound}",
            out.probe_random_reads
        );
        assert!(out.probe_random_reads > 0, "cut planning must probe");
    }
}
