//! Device-driven merge planning.
//!
//! Replaces the old one-shot seek-dominance veto with a real plan selector:
//! given the disk's [`DiskModel`] (including its [`pdm::ContentionModel`]),
//! the record count, and the run layout, the planner *prices* every
//! candidate worker count and picks the cheapest. The sequential merge
//! (one worker) is always a candidate, so an adaptive plan can never be
//! worse than sequential under the model — the BENCH_parmerge SCSI cliff
//! is impossible by construction.
//!
//! The predicted service time of a candidate mirrors how the charger will
//! actually bill the merge:
//!
//! * **I/O** — every data block is read once and written once; splitter
//!   probes and worker boundary faults are random reads; the whole delta is
//!   priced by [`DiskModel::shared_service_time`] with the worker count as
//!   the declared stream count. One worker ⇒ one stream ⇒ the historical
//!   dedicated price.
//! * **CPU** — loser-tree selects (`records · ⌈log₂ fan_in⌉` of them) run
//!   on the workers concurrently; record moves land on the single writer
//!   thread. Selects are priced at the comparison rate, or the (cheaper)
//!   key-op rate when the merge runs a key-based kernel — the rate the
//!   charger actually bills.
//! * A parallel candidate is charged `max(cpu, io)` (the pipelined rule);
//!   the sequential candidate is charged `cpu + io` unless the caller says
//!   the merge runs under a pipelined section anyway.
//!
//! The same model drives the secondary knobs: prefetch depth follows the
//! device's queue depth, and the exchange planner picks streaming vs staged
//! delivery and a message size from the block geometry.

use pdm::{DiskModel, IoSnapshot};
use sim::SimDuration;

/// Reference CPU prices for planning (defaults match the alpha_533 cost
/// model used by the cluster charger). Only the *ratio* to disk service
/// time matters for plan selection, so per-node slowdowns cancel out.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuCost {
    /// Nanoseconds per key comparison.
    pub ns_per_comparison: f64,
    /// Nanoseconds per record move.
    pub ns_per_record_move: f64,
    /// Nanoseconds per key operation — what a key-based (radix/ips4o)
    /// merge's tree selects actually bill, 4.7x cheaper than a full
    /// comparison. Calibrated against the charger's alpha_533 rates: a
    /// `--calibration-report` run showed key-based merges charging
    /// `merge.key_ops` at this rate while the planner priced the same
    /// selects as comparisons.
    pub ns_per_key_op: f64,
}

impl Default for CpuCost {
    fn default() -> Self {
        CpuCost {
            ns_per_comparison: 280.0,
            ns_per_record_move: 120.0,
            ns_per_key_op: 60.0,
        }
    }
}

/// The shape of one k-way merge, as the planner sees it.
#[derive(Debug, Clone, Copy)]
pub struct MergeShape {
    /// Sorted input segments.
    pub fan_in: usize,
    /// Total records across all segments.
    pub records: u64,
    /// Bytes per record.
    pub record_size: usize,
    /// PDM block size of the disk.
    pub block_bytes: usize,
    /// Whether the merge runs a key-based kernel: its selects are billed
    /// as key operations, not full comparisons.
    pub key_based: bool,
}

impl MergeShape {
    /// Data blocks the merge reads (and writes): `⌈bytes / block⌉`.
    pub fn data_blocks(&self) -> u64 {
        (self.records * self.record_size as u64).div_ceil(self.block_bytes.max(1) as u64)
    }

    /// Estimated metered random reads a `workers`-way split costs: each of
    /// the `workers − 1` cuts binary-searches every segment (≈ `⌈log₂
    /// blocks-per-segment⌉` distinct blocks each, see the probe-bound
    /// regression test), and each non-first worker faults one boundary
    /// block per segment. Capped at the data block count plus boundaries —
    /// probes dedupe at block granularity and cannot exceed the file.
    pub fn probe_reads(&self, workers: usize) -> u64 {
        if workers <= 1 {
            return 0;
        }
        let cuts = (workers - 1) as u64;
        let k = self.fan_in.max(1) as u64;
        let blocks_per_seg = (self.data_blocks() / k).max(1);
        let per_cut = k * (u64::BITS - blocks_per_seg.leading_zeros()) as u64;
        let boundary_faults = cuts * k;
        (cuts * per_cut).min(self.data_blocks()) + boundary_faults
    }

    /// The I/O delta a `workers`-way merge of this shape is predicted to
    /// produce: every data block read and written once, plus the splitter
    /// probes as random reads.
    pub fn predicted_io(&self, workers: usize) -> IoSnapshot {
        let blocks = self.data_blocks();
        let bytes = self.records * self.record_size as u64;
        let probes = self.probe_reads(workers);
        let probe_bytes = probes * self.block_bytes as u64;
        IoSnapshot {
            blocks_read: blocks + probes,
            blocks_written: blocks,
            bytes_read: bytes + probe_bytes,
            bytes_written: bytes,
            random_reads: probes,
            seek_bytes: probe_bytes,
            files_created: 1,
        }
    }
}

/// Predicted virtual time of merging `shape` with `workers` range-partition
/// workers on a device priced by `model`.
///
/// `overlapped` says whether the sequential (1-worker) candidate runs under
/// a pipelined section (charged `max(cpu, io)`) or a plain sequential one
/// (`cpu + io`); parallel candidates are always overlapped.
pub fn predict_merge_time(
    model: &DiskModel,
    cpu: &CpuCost,
    shape: &MergeShape,
    workers: usize,
    overlapped: bool,
) -> SimDuration {
    let (cpu_time, io_time) = predict_merge_parts(model, cpu, shape, workers);
    if workers.max(1) > 1 || overlapped {
        cpu_time.max(io_time)
    } else {
        cpu_time + io_time
    }
}

/// The (cpu, io) components of [`predict_merge_time`], for callers that
/// must rescale one side before combining them — a node's CPU slowdown
/// stretches its compare/move time but not its disk's service time.
pub fn predict_merge_parts(
    model: &DiskModel,
    cpu: &CpuCost,
    shape: &MergeShape,
    workers: usize,
) -> (SimDuration, SimDuration) {
    let workers = workers.max(1);
    let selects = shape.records * ceil_log2(shape.fan_in.max(2) as u64);
    let ns_per_select = if shape.key_based {
        cpu.ns_per_key_op
    } else {
        cpu.ns_per_comparison
    };
    let compare = SimDuration::from_secs(selects as f64 * ns_per_select * 1e-9);
    // Selects parallelize across workers; the stitch/write side stays serial.
    let moves = SimDuration::from_secs(shape.records as f64 * cpu.ns_per_record_move * 1e-9);
    let cpu_time = compare / workers as f64 + moves;
    let io_time = model.shared_service_time(&shape.predicted_io(workers), workers);
    (cpu_time, io_time)
}

fn ceil_log2(x: u64) -> u64 {
    (u64::BITS - (x - 1).leading_zeros()) as u64
}

/// Picks the cheapest worker count in `1..=max_workers` under
/// [`predict_merge_time`], preferring fewer workers on ties. Because 1 is
/// always a candidate, the choice can never price worse than the
/// sequential merge.
pub fn choose_merge_workers(
    model: &DiskModel,
    cpu: &CpuCost,
    shape: &MergeShape,
    max_workers: usize,
    overlapped: bool,
) -> usize {
    let mut best = 1usize;
    let mut best_t = predict_merge_time(model, cpu, shape, 1, overlapped);
    for w in 2..=max_workers.max(1) {
        let t = predict_merge_time(model, cpu, shape, w, overlapped);
        if t < best_t {
            best = w;
            best_t = t;
        }
    }
    best
}

/// Prefetch/write-behind queue depth for a device shared by `streams`
/// request streams: deep queues absorb read-ahead, shallow ones only buy
/// double buffering. Clamped to `[2, 8]` (double buffering up to the batch
/// worker cap).
pub fn planned_depth(model: &DiskModel, streams: usize) -> usize {
    let share = (model.contention.queue_depth as usize) / streams.max(1);
    share.clamp(2, 8)
}

/// How partition exchange should deliver records into the final merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangePlan {
    /// Feed incoming partitions straight into the incremental merge
    /// (no staging files) instead of staging and merging afterwards.
    pub streaming: bool,
    /// Records per network message.
    pub msg_records: usize,
}

/// Plans the exchange for a device: streaming merge pays whenever messages
/// fill whole blocks (the staging files it removes are pure positioning
/// overhead), and message size grows with the device's positioning cost so
/// each arrival amortizes a block write. An explicit `requested_msg` is an
/// override — the planner only sizes the message when the caller passed
/// none.
pub fn plan_exchange(
    model: &DiskModel,
    records_per_block: usize,
    requested_msg: Option<usize>,
) -> ExchangePlan {
    let rpb = records_per_block.max(1);
    let msg_records = requested_msg.unwrap_or_else(|| {
        // Seek-dominated devices want several blocks per message so each
        // arrival amortizes positioning; fast ones are happy with one.
        let bytes = model_block_bytes(rpb);
        let blocks = if model.random_block(bytes) > model.sequential_block(bytes) * 2.0 {
            4
        } else {
            1
        };
        rpb * blocks
    });
    ExchangePlan {
        streaming: msg_records >= rpb,
        msg_records,
    }
}

/// Nominal byte size of one block for `records_per_block` 16-byte records —
/// only used to compare seek vs transfer magnitudes; the exact record size
/// washes out of the comparison.
fn model_block_bytes(records_per_block: usize) -> u64 {
    (records_per_block * 16) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> MergeShape {
        MergeShape {
            fan_in: 8,
            records: 1 << 20,
            record_size: 4,
            block_bytes: 32 * 1024,
            key_based: false,
        }
    }

    #[test]
    fn scsi_prefers_sequential_nvme_goes_wide() {
        let cpu = CpuCost::default();
        let scsi = DiskModel::scsi_2000();
        let nvme = DiskModel::nvme_modern();
        assert_eq!(choose_merge_workers(&scsi, &cpu, &shape(), 4, false), 1);
        assert_eq!(choose_merge_workers(&nvme, &cpu, &shape(), 4, false), 4);
    }

    #[test]
    fn adaptive_choice_never_prices_worse_than_sequential() {
        let cpu = CpuCost::default();
        for model in [
            DiskModel::scsi_2000(),
            DiskModel::nvme_modern(),
            DiskModel::free(),
        ] {
            for fan_in in [2usize, 8, 15] {
                for records in [1u64 << 10, 1 << 16, 1 << 22] {
                    let s = MergeShape {
                        fan_in,
                        records,
                        record_size: 16,
                        block_bytes: 4096,
                        key_based: false,
                    };
                    for overlapped in [false, true] {
                        let w = choose_merge_workers(&model, &cpu, &s, 8, overlapped);
                        let chosen = predict_merge_time(&model, &cpu, &s, w, overlapped);
                        let seq = predict_merge_time(&model, &cpu, &s, 1, overlapped);
                        assert!(
                            chosen <= seq,
                            "{}: w={w} priced {chosen} > sequential {seq}",
                            model.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn key_based_selects_price_at_the_key_op_rate() {
        let cpu = CpuCost::default();
        let model = DiskModel::free();
        let cmp = shape();
        let key = MergeShape {
            key_based: true,
            ..cmp
        };
        // Free disk: the prediction is pure CPU. The select side must drop
        // by exactly the key-op/comparison ratio; moves stay unchanged.
        let (cmp_cpu, _) = predict_merge_parts(&model, &cpu, &cmp, 1);
        let (key_cpu, _) = predict_merge_parts(&model, &cpu, &key, 1);
        let moves = SimDuration::from_secs(cmp.records as f64 * cpu.ns_per_record_move * 1e-9);
        let cmp_selects = (cmp_cpu - moves).as_secs();
        let key_selects = (key_cpu - moves).as_secs();
        let ratio = cmp_selects / key_selects;
        let want = cpu.ns_per_comparison / cpu.ns_per_key_op;
        assert!(
            (ratio - want).abs() < 1e-9,
            "select pricing ratio {ratio} != rate ratio {want}"
        );
    }

    #[test]
    fn probe_estimate_scales_with_cuts_and_caps_at_file() {
        let s = shape();
        assert_eq!(s.probe_reads(1), 0);
        assert!(s.probe_reads(4) > s.probe_reads(2));
        // A tiny merge cannot be charged more probes than it has blocks
        // (plus one boundary fault per cut and segment).
        let tiny = MergeShape {
            fan_in: 16,
            records: 64,
            record_size: 4,
            block_bytes: 4096,
            key_based: false,
        };
        let cuts = 7u64;
        assert!(tiny.probe_reads(8) <= tiny.data_blocks() + cuts * 16);
    }

    #[test]
    fn depth_follows_queue_depth() {
        let scsi = DiskModel::scsi_2000();
        let nvme = DiskModel::nvme_modern();
        assert_eq!(planned_depth(&scsi, 1), 2, "shallow queue: double buffer");
        assert_eq!(planned_depth(&scsi, 4), 2);
        assert_eq!(planned_depth(&nvme, 1), 8, "deep queue: fill the batch");
        assert_eq!(planned_depth(&nvme, 4), 8);
        assert_eq!(planned_depth(&nvme, 16), 2);
    }

    #[test]
    fn exchange_plan_prefers_block_sized_messages() {
        let scsi = DiskModel::scsi_2000();
        let nvme = DiskModel::nvme_modern();
        let p = plan_exchange(&scsi, 256, None);
        assert!(p.streaming);
        assert_eq!(p.msg_records, 1024, "seek-heavy: several blocks/message");
        let p = plan_exchange(&nvme, 256, None);
        assert!(p.streaming);
        assert_eq!(p.msg_records, 256);
        // Explicit message sizes are overrides; sub-block ones stage.
        let p = plan_exchange(&scsi, 256, Some(16));
        assert!(!p.streaming);
        assert_eq!(p.msg_records, 16);
    }

    #[test]
    fn predicted_io_books_probes_as_random_reads() {
        let s = shape();
        let io = s.predicted_io(4);
        assert_eq!(io.random_reads, s.probe_reads(4));
        assert_eq!(io.blocks_read - io.random_reads, s.data_blocks());
        assert_eq!(io.blocks_written, s.data_blocks());
        let seq = s.predicted_io(1);
        assert_eq!(seq.random_reads, 0);
    }
}
