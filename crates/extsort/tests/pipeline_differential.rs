//! Differential tests: the pipelined execution engine must be
//! *observationally identical* to the sequential reference — byte-identical
//! output files AND identical metered block-I/O counters — across run
//! formation, the full polyphase sort, and the single-pass multiway merge,
//! for several worker counts and block sizes.
//!
//! The sequential path is the oracle: it existed first, it is simpler, and
//! every table reproduction runs through it. Pipelining is only allowed to
//! change *when* transfers happen, never *what* is transferred.

use extsort::run_formation::form_runs;
use extsort::{
    fingerprint_file, merge_sorted_files, merge_sorted_files_with, polyphase_sort, ExtSortConfig,
    PipelineConfig,
};
use pdm::record::KeyPayload;
use pdm::{Disk, IoSnapshot, Record};
use sim::rng::{Pcg64, Rng};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
const BLOCK_BYTES: [usize; 3] = [64, 256, 1024];

fn random_u32(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = Pcg64::new(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

fn random_kv(n: usize, seed: u64) -> Vec<KeyPayload> {
    let mut rng = Pcg64::new(seed);
    (0..n)
        .map(|_| KeyPayload::new(rng.next_u64(), rng.next_u64()))
        .collect()
}

/// Runs `f` on a fresh in-memory disk pre-loaded with `data` under `in`,
/// returning the I/O delta it produced.
fn metered<R: Record, T>(
    block_bytes: usize,
    data: &[R],
    f: impl FnOnce(&Disk) -> T,
) -> (Disk, T, IoSnapshot) {
    let disk = Disk::in_memory(block_bytes);
    disk.write_file("in", data).unwrap();
    let before = disk.stats().snapshot();
    let out = f(&disk);
    let delta = disk.stats().snapshot().delta(&before);
    (disk, out, delta)
}

/// Asserts two disks hold byte-identical files under `name`.
fn assert_same_bytes<R: Record>(a: &Disk, b: &Disk, name: &str) {
    assert_eq!(
        a.read_file::<R>(name).unwrap(),
        b.read_file::<R>(name).unwrap(),
        "file {name} differs between sequential and pipelined"
    );
}

#[test]
fn polyphase_identical_across_workers_and_blocks() {
    let data = random_u32(3000, 42);
    for &bb in &BLOCK_BYTES {
        // Two blocks of buffering per tape, whatever the block size.
        let mem = 2 * 4 * (bb / 4);
        let cfg_seq = ExtSortConfig::new(mem).with_tapes(4);
        let (d_seq, r_seq, io_seq) = metered(bb, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
        });
        for &w in &WORKER_COUNTS {
            let cfg_pipe = cfg_seq
                .clone()
                .with_pipeline(PipelineConfig::with_workers(w));
            let (d_pipe, r_pipe, io_pipe) = metered(bb, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_pipe).unwrap()
            });
            assert_eq!(
                io_pipe, io_seq,
                "block {bb}, workers {w}: I/O counters differ"
            );
            assert_eq!(r_pipe.records, r_seq.records);
            assert_eq!(r_pipe.initial_runs, r_seq.initial_runs);
            assert_eq!(r_pipe.merge_phases, r_seq.merge_phases);
            assert_eq!(r_pipe.comparisons, r_seq.comparisons);
            assert_eq!(r_pipe.io, r_seq.io);
            assert_same_bytes::<u32>(&d_seq, &d_pipe, "out");
        }
    }
}

#[test]
fn run_formation_identical_across_workers() {
    let data = random_u32(2500, 7);
    for &bb in &[64usize, 256] {
        let cfg_seq = ExtSortConfig::new(128).with_tapes(4);
        let (d_seq, f_seq, io_seq) = metered(bb, &data, |d| {
            form_runs::<u32>(d, "in", "rf", 3, &cfg_seq).unwrap()
        });
        for &w in &WORKER_COUNTS {
            let cfg_pipe = cfg_seq
                .clone()
                .with_pipeline(PipelineConfig::with_workers(w));
            let (d_pipe, f_pipe, io_pipe) = metered(bb, &data, |d| {
                form_runs::<u32>(d, "in", "rf", 3, &cfg_pipe).unwrap()
            });
            assert_eq!(
                io_pipe, io_seq,
                "block {bb}, workers {w}: I/O counters differ"
            );
            assert_eq!(f_pipe.records, f_seq.records);
            assert_eq!(f_pipe.total_runs, f_seq.total_runs);
            assert_eq!(f_pipe.comparisons, f_seq.comparisons);
            assert_eq!(f_pipe.tapes.len(), f_seq.tapes.len());
            for (a, b) in f_seq.tapes.iter().zip(&f_pipe.tapes) {
                assert_eq!(a.runs, b.runs, "run layout differs on tape {}", a.name);
                assert_same_bytes::<u32>(&d_seq, &d_pipe, &a.name);
            }
        }
    }
}

#[test]
fn merge_identical_across_workers_and_blocks() {
    // Three interleaved sorted inputs.
    let inputs: Vec<Vec<u32>> = (0..3u32)
        .map(|k| (0..400).map(|i| i * 3 + k).collect())
        .collect();
    for &bb in &BLOCK_BYTES {
        let setup = |d: &Disk| {
            for (i, v) in inputs.iter().enumerate() {
                d.write_file(&format!("in{i}"), v).unwrap();
            }
        };
        let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();

        let d_seq = Disk::in_memory(bb);
        setup(&d_seq);
        let before = d_seq.stats().snapshot();
        let r_seq = merge_sorted_files::<u32>(&d_seq, &names, "out").unwrap();
        let io_seq = d_seq.stats().snapshot().delta(&before);

        for &w in &WORKER_COUNTS {
            let pipe = PipelineConfig::with_workers(w);
            let d_pipe = Disk::in_memory(bb);
            setup(&d_pipe);
            let before = d_pipe.stats().snapshot();
            let r_pipe = merge_sorted_files_with::<u32>(&d_pipe, &names, "out", &pipe).unwrap();
            let io_pipe = d_pipe.stats().snapshot().delta(&before);

            assert_eq!(
                io_pipe, io_seq,
                "block {bb}, workers {w}: I/O counters differ"
            );
            assert_eq!(r_pipe.records, r_seq.records);
            assert_eq!(r_pipe.comparisons, r_seq.comparisons);
            assert_eq!(r_pipe.io, r_seq.io);
            assert_same_bytes::<u32>(&d_seq, &d_pipe, "out");
        }
    }
}

#[test]
fn wide_records_and_deep_queues_identical() {
    // 16-byte records + a deeper prefetch queue than the default.
    let data = random_kv(1200, 99);
    let cfg_seq = ExtSortConfig::new(200).with_tapes(5);
    let (d_seq, r_seq, io_seq) = metered(256, &data, |d| {
        polyphase_sort::<KeyPayload>(d, "in", "out", "pp", &cfg_seq).unwrap()
    });
    for depth in [1usize, 4] {
        let cfg_pipe = cfg_seq
            .clone()
            .with_pipeline(PipelineConfig::with_workers(3).with_prefetch_blocks(depth));
        let (d_pipe, r_pipe, io_pipe) = metered(256, &data, |d| {
            polyphase_sort::<KeyPayload>(d, "in", "out", "pp", &cfg_pipe).unwrap()
        });
        assert_eq!(io_pipe, io_seq, "depth {depth}: I/O counters differ");
        assert_eq!(r_pipe.comparisons, r_seq.comparisons);
        assert_same_bytes::<KeyPayload>(&d_seq, &d_pipe, "out");
    }
}

#[test]
fn replacement_selection_unaffected_by_pipeline_flag() {
    // Pipelined run formation only covers chunk sorting; with replacement
    // selection the flag must still produce the sequential result (merge
    // phases may use write-behind, but observations are identical).
    use extsort::RunFormation;
    let data = random_u32(1500, 5);
    let cfg_seq = ExtSortConfig::new(128)
        .with_tapes(4)
        .with_run_formation(RunFormation::ReplacementSelection);
    let (d_seq, r_seq, io_seq) = metered(64, &data, |d| {
        polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
    });
    let cfg_pipe = cfg_seq
        .clone()
        .with_pipeline(PipelineConfig::with_workers(4));
    let (d_pipe, r_pipe, io_pipe) = metered(64, &data, |d| {
        polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_pipe).unwrap()
    });
    assert_eq!(io_pipe, io_seq);
    assert_eq!(r_pipe.comparisons, r_seq.comparisons);
    assert_same_bytes::<u32>(&d_seq, &d_pipe, "out");
    assert_eq!(
        fingerprint_file::<u32>(&d_pipe, "out").unwrap(),
        fingerprint_file::<u32>(&d_seq, "out").unwrap()
    );
}

#[test]
fn pipelined_handles_empty_and_tiny_inputs() {
    for n in [0usize, 1, 5] {
        let data = random_u32(n, 3);
        let cfg_seq = ExtSortConfig::new(64).with_tapes(4);
        let (d_seq, _, io_seq) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
        });
        let cfg_pipe = cfg_seq
            .clone()
            .with_pipeline(PipelineConfig::with_workers(2));
        let (d_pipe, _, io_pipe) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_pipe).unwrap()
        });
        assert_eq!(io_pipe, io_seq, "n = {n}");
        assert_same_bytes::<u32>(&d_seq, &d_pipe, "out");
    }
}
