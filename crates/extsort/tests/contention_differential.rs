//! Differential tests for the shared-disk contention model: pricing the
//! queue must be *observationally invisible*. The contention model only
//! changes what virtual time a delta costs — never the bytes on disk, and
//! never the streaming I/O counters. Likewise the adaptive planner may pick
//! different worker counts and prefetch depths per device, but the sorted
//! output must stay byte-identical to the sequential oracle everywhere.

use extsort::{balanced_kway_sort, polyphase_sort, ExtSortConfig, PipelineConfig};
use pdm::{Disk, DiskModel, IoSnapshot, Record};
use workloads::{generate_block, Benchmark, Layout};

fn device_models() -> [DiskModel; 3] {
    [
        DiskModel::scsi_2000(),
        DiskModel::nvme_modern(),
        DiskModel::free(),
    ]
}

/// Streaming I/O net of seeking reads (probes/prefills are the only I/O a
/// wider plan is allowed to add, and they are broken out as
/// `random_reads`/`seek_bytes`).
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

fn metered<R: Record, T>(
    model: &DiskModel,
    block_bytes: usize,
    data: &[R],
    f: impl FnOnce(&Disk) -> T,
) -> (Disk, T, IoSnapshot) {
    let disk = Disk::in_memory(block_bytes).with_model(model.clone());
    disk.write_file("in", data).unwrap();
    let before = disk.stats().snapshot();
    let out = f(&disk);
    let delta = disk.stats().snapshot().delta(&before);
    (disk, out, delta)
}

/// The contention model is pure pricing: running the *identical* sequential
/// sort on every device model produces byte-identical files and identical
/// I/O counters — queueing can only show up in virtual time.
#[test]
fn contention_pricing_never_touches_bytes_or_counters() {
    for bench in [Benchmark::Uniform, Benchmark::Gaussian, Benchmark::Zero] {
        let data = generate_block(bench, 47, Layout::single(2_000));
        let cfg = ExtSortConfig::new(64).with_tapes(4);
        let mut baseline: Option<(Vec<u32>, IoSnapshot)> = None;
        for model in device_models() {
            let (disk, _, io) = metered(&model, 64, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
            });
            let out = disk.read_file::<u32>("out").unwrap();
            match &baseline {
                None => baseline = Some((out, io)),
                Some((b_out, b_io)) => {
                    assert_eq!(&out, b_out, "{bench}/{}: output differs", model.name);
                    assert_eq!(&io, b_io, "{bench}/{}: metered I/O differs", model.name);
                }
            }
        }
    }
}

/// The adaptive planner picks per-device plans (sequential on the SCSI
/// cliff, wide on NVMe, device-derived prefetch depth), but every plan must
/// produce the sequential oracle's bytes and streaming I/O.
#[test]
fn adaptive_plans_match_the_sequential_oracle() {
    for bench in [
        Benchmark::Uniform,
        Benchmark::ZipfDuplicates,
        Benchmark::Sorted,
    ] {
        let data = generate_block(bench, 48, Layout::single(2_000));
        let seq_cfg = ExtSortConfig::new(64).with_tapes(4);
        let (d_seq, r_seq, io_seq) = metered(&DiskModel::scsi_2000(), 64, &data, |d| {
            balanced_kway_sort::<u32>(d, "in", "out", "kw", &seq_cfg).unwrap()
        });
        let oracle = d_seq.read_file::<u32>("out").unwrap();
        for model in device_models() {
            let ada_cfg = seq_cfg.clone().with_pipeline(PipelineConfig::adaptive(2));
            let (d_ada, r_ada, io_ada) = metered(&model, 64, &data, |d| {
                balanced_kway_sort::<u32>(d, "in", "out", "kw", &ada_cfg).unwrap()
            });
            assert_eq!(
                d_ada.read_file::<u32>("out").unwrap(),
                oracle,
                "{bench}/{}: adaptive output differs from the oracle",
                model.name
            );
            assert_eq!(r_ada.records, r_seq.records, "{bench}/{}", model.name);
            assert_eq!(
                non_seek(&io_ada),
                non_seek(&io_seq),
                "{bench}/{}: adaptive streaming I/O differs",
                model.name
            );
        }
    }
}
