//! Differential tests: range-partitioned parallel merging must be
//! *observationally identical* to the sequential loser tree — byte-identical
//! output files for every worker count, and identical streaming I/O (the
//! parallel path may only add metered *seeking* reads: splitter probes and
//! boundary-block prefills, both broken out by `random_reads`/`seek_bytes`).
//!
//! Coverage: the full polyphase sort and the balanced k-way sort across all
//! nine workload distributions, and the single-pass multiway merge across
//! block sizes — every merge call site the `merge_workers` knob reaches.

use extsort::{
    balanced_kway_sort, merge_sorted_files, merge_sorted_files_kernel, polyphase_sort,
    ExtSortConfig, PipelineConfig, SortKernel,
};
use pdm::{Disk, IoSnapshot, Record};
use workloads::{generate_block, Benchmark, Layout};

const MERGE_WORKERS: [usize; 3] = [1, 2, 4];

/// The I/O a merge performs net of seeking reads: parallel merging adds
/// probes and prefills (metered as `random_reads`/`seek_bytes`, included in
/// the read totals), but the streaming traffic and every write must match
/// the sequential oracle exactly.
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

/// Runs `f` on a fresh in-memory disk pre-loaded with `data` under `in`,
/// returning the I/O delta it produced.
fn metered<R: Record, T>(
    block_bytes: usize,
    data: &[R],
    f: impl FnOnce(&Disk) -> T,
) -> (Disk, T, IoSnapshot) {
    let disk = Disk::in_memory(block_bytes);
    disk.write_file("in", data).unwrap();
    let before = disk.stats().snapshot();
    let out = f(&disk);
    let delta = disk.stats().snapshot().delta(&before);
    (disk, out, delta)
}

#[test]
fn polyphase_parallel_identical_all_distributions() {
    for bench in Benchmark::ALL {
        let data = generate_block(bench, 31, Layout::single(2_000));
        let cfg_seq = ExtSortConfig::new(64).with_tapes(4);
        let (d_seq, r_seq, io_seq) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
        });
        for &w in &MERGE_WORKERS {
            let cfg_par = cfg_seq.clone().with_merge_workers(w);
            let (d_par, r_par, io_par) = metered(64, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_par).unwrap()
            });
            assert_eq!(
                d_seq.read_file::<u32>("out").unwrap(),
                d_par.read_file::<u32>("out").unwrap(),
                "{bench}, workers {w}: outputs differ"
            );
            assert_eq!(r_par.records, r_seq.records);
            assert_eq!(r_par.initial_runs, r_seq.initial_runs);
            assert_eq!(r_par.merge_phases, r_seq.merge_phases);
            assert_eq!(
                non_seek(&io_par),
                non_seek(&io_seq),
                "{bench}, workers {w}: non-seek I/O differs"
            );
        }
    }
}

#[test]
fn balanced_kway_parallel_identical_all_distributions() {
    for bench in Benchmark::ALL {
        let data = generate_block(bench, 32, Layout::single(3_000));
        let cfg_seq = ExtSortConfig::new(160).with_tapes(8);
        let (d_seq, r_seq, io_seq) = metered(64, &data, |d| {
            balanced_kway_sort::<u32>(d, "in", "out", "kw", &cfg_seq).unwrap()
        });
        for &w in &MERGE_WORKERS {
            let cfg_par = cfg_seq.clone().with_merge_workers(w);
            let (d_par, r_par, io_par) = metered(64, &data, |d| {
                balanced_kway_sort::<u32>(d, "in", "out", "kw", &cfg_par).unwrap()
            });
            assert_eq!(
                d_seq.read_file::<u32>("out").unwrap(),
                d_par.read_file::<u32>("out").unwrap(),
                "{bench}, workers {w}: outputs differ"
            );
            assert_eq!(r_par.records, r_seq.records);
            assert_eq!(r_par.initial_runs, r_seq.initial_runs);
            assert_eq!(
                non_seek(&io_par),
                non_seek(&io_seq),
                "{bench}, workers {w}: non-seek I/O differs"
            );
        }
    }
}

#[test]
fn single_pass_merge_parallel_identical_across_blocks() {
    // Three interleaved sorted inputs, merged in one pass (the PSRS step-5
    // call site) across block sizes, kernels and worker counts.
    let inputs: Vec<Vec<u32>> = (0..3u32)
        .map(|k| (0..500).map(|i| i * 3 + k).collect())
        .collect();
    let names: Vec<String> = (0..3).map(|i| format!("in{i}")).collect();
    let setup = |d: &Disk| {
        for (i, v) in inputs.iter().enumerate() {
            d.write_file(&format!("in{i}"), v).unwrap();
        }
    };
    for &bb in &[64usize, 256, 1024] {
        let d_seq = Disk::in_memory(bb);
        setup(&d_seq);
        let before = d_seq.stats().snapshot();
        let r_seq = merge_sorted_files::<u32>(&d_seq, &names, "out").unwrap();
        let io_seq = d_seq.stats().snapshot().delta(&before);
        for &w in &MERGE_WORKERS {
            for kernel in [SortKernel::Radix, SortKernel::Comparison] {
                let pipe = PipelineConfig::off().with_merge_workers(w);
                let d_par = Disk::in_memory(bb);
                setup(&d_par);
                let before = d_par.stats().snapshot();
                let r_par =
                    merge_sorted_files_kernel::<u32>(&d_par, &names, "out", &pipe, kernel).unwrap();
                let io_par = d_par.stats().snapshot().delta(&before);
                assert_eq!(
                    d_seq.read_file::<u32>("out").unwrap(),
                    d_par.read_file::<u32>("out").unwrap(),
                    "block {bb}, workers {w}, {kernel:?}: outputs differ"
                );
                assert_eq!(r_par.records, r_seq.records);
                assert_eq!(
                    non_seek(&io_par),
                    non_seek(&io_seq),
                    "block {bb}, workers {w}, {kernel:?}: non-seek I/O differs"
                );
            }
        }
    }
}

#[test]
fn parallel_merge_composes_with_pipeline() {
    // Both knobs on at once: pipelined I/O + range-partitioned merge CPU.
    let data = generate_block(Benchmark::Gaussian, 33, Layout::single(2_500));
    let cfg_seq = ExtSortConfig::new(64).with_tapes(4);
    let (d_seq, _, io_seq) = metered(64, &data, |d| {
        polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
    });
    let cfg_both = cfg_seq
        .clone()
        .with_pipeline(PipelineConfig::with_workers(2).with_merge_workers(4));
    let (d_both, _, io_both) = metered(64, &data, |d| {
        polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_both).unwrap()
    });
    assert_eq!(
        d_seq.read_file::<u32>("out").unwrap(),
        d_both.read_file::<u32>("out").unwrap()
    );
    assert_eq!(non_seek(&io_both), non_seek(&io_seq));
}

#[test]
fn parallel_merge_handles_empty_and_tiny_inputs() {
    for n in [0u64, 1, 5, 65] {
        let data = generate_block(Benchmark::Uniform, 34, Layout::single(n));
        let cfg_seq = ExtSortConfig::new(64).with_tapes(4);
        let (d_seq, _, _) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
        });
        let cfg_par = cfg_seq.clone().with_merge_workers(4);
        let (d_par, _, _) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_par).unwrap()
        });
        assert_eq!(
            d_seq.read_file::<u32>("out").unwrap(),
            d_par.read_file::<u32>("out").unwrap(),
            "n = {n}"
        );
    }
}
