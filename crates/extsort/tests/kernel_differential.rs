//! Differential tests: the fast kernels (LSD radix and the ips4o-style
//! in-place partitioning sort) must be *observationally identical* to the
//! comparison kernel — byte-identical output files AND identical metered
//! block-I/O — across every benchmark distribution (including the
//! duplicate-heavy Zero and Zipf inputs), every sorter, and every pipeline
//! worker count. A kernel is allowed to change how CPU work is *counted*
//! (`key_ops` vs `comparisons`), never what is written.
//!
//! The "proptest" here is a seeded exhaustive sweep (the `proptest` crate
//! is not vendored offline — see the `proptests` feature gate): randomized
//! configurations are drawn from a fixed-seed PCG so failures replay
//! deterministically.

use extsort::{
    balanced_kway_sort, distribution_sort, merge_sorted_files_kernel, polyphase_sort,
    ExtSortConfig, PipelineConfig, SortKernel,
};
use pdm::record::KeyPayload;
use pdm::{Disk, IoSnapshot, Record};
use sim::rng::{Pcg64, Rng};
use workloads::{generate_whole, Benchmark};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];
/// The kernels that must each match the comparison oracle.
const FAST_KERNELS: [SortKernel; 2] = [SortKernel::Radix, SortKernel::Ips4o];

/// Runs `f` on a fresh in-memory disk pre-loaded with `data` under `in`,
/// returning the I/O delta it produced.
fn metered<R: Record, T>(
    block_bytes: usize,
    data: &[R],
    f: impl FnOnce(&Disk) -> T,
) -> (Disk, T, IoSnapshot) {
    let disk = Disk::in_memory(block_bytes);
    disk.write_file("in", data).unwrap();
    let before = disk.stats().snapshot();
    let out = f(&disk);
    let delta = disk.stats().snapshot().delta(&before);
    (disk, out, delta)
}

fn assert_same_bytes<R: Record>(a: &Disk, b: &Disk, name: &str, what: &str) {
    assert_eq!(
        a.read_file::<R>(name).unwrap(),
        b.read_file::<R>(name).unwrap(),
        "file {name} differs between kernels ({what})"
    );
}

#[test]
fn polyphase_kernels_identical_across_all_distributions() {
    for bench in Benchmark::ALL {
        let data = generate_whole(bench, 0xC0FFEE, &[2000]);
        let base = ExtSortConfig::new(128).with_tapes(4);
        let cfg_cmp = base.clone().with_kernel(SortKernel::Comparison);
        let (d_cmp, r_cmp, io_cmp) = metered(64, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_cmp).unwrap()
        });
        for kernel in FAST_KERNELS {
            let cfg_fast = base.clone().with_kernel(kernel);
            let (d_fast, r_fast, io_fast) = metered(64, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_fast).unwrap()
            });
            let k = kernel.name();
            assert_eq!(io_fast, io_cmp, "{bench}/{k}: I/O counters differ");
            assert_eq!(r_fast.io, r_cmp.io, "{bench}/{k}: reported I/O differs");
            assert_eq!(r_fast.records, r_cmp.records);
            assert_eq!(r_fast.initial_runs, r_cmp.initial_runs);
            assert_eq!(r_fast.merge_phases, r_cmp.merge_phases);
            assert_same_bytes::<u32>(&d_cmp, &d_fast, "out", &format!("{bench}/{k}"));
            // The fast path must actually bill key passes on non-trivial input.
            if !data.is_empty() {
                assert!(r_fast.key_ops > 0, "{bench}/{k}: billed no key ops");
                assert_eq!(r_cmp.key_ops, 0, "{bench}: comparison billed key ops");
            }
        }
    }
}

#[test]
fn fast_kernels_pipelined_match_sequential_per_distribution() {
    for bench in Benchmark::ALL {
        let data = generate_whole(bench, 0xBEEF, &[1500]);
        for kernel in FAST_KERNELS {
            let cfg_seq = ExtSortConfig::new(96).with_tapes(4).with_kernel(kernel);
            let (d_seq, r_seq, io_seq) = metered(64, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_seq).unwrap()
            });
            let k = kernel.name();
            for &w in &WORKER_COUNTS {
                let cfg_pipe = cfg_seq
                    .clone()
                    .with_pipeline(PipelineConfig::with_workers(w));
                let (d_pipe, r_pipe, io_pipe) = metered(64, &data, |d| {
                    polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_pipe).unwrap()
                });
                assert_eq!(io_pipe, io_seq, "{bench}/{k}, workers {w}: I/O differs");
                assert_eq!(
                    r_pipe.comparisons, r_seq.comparisons,
                    "{bench}/{k}, workers {w}"
                );
                assert_eq!(r_pipe.key_ops, r_seq.key_ops, "{bench}/{k}, workers {w}");
                assert_same_bytes::<u32>(
                    &d_seq,
                    &d_pipe,
                    "out",
                    &format!("{bench}/{k}, workers {w}"),
                );
            }
        }
    }
}

#[test]
fn balanced_kway_and_distribution_sort_kernels_identical() {
    for bench in [
        Benchmark::Uniform,
        Benchmark::Zero,
        Benchmark::ZipfDuplicates,
    ] {
        let data = generate_whole(bench, 0xFEED, &[1800]);
        for kernel_pair in [("kway", true), ("dist", false)] {
            let (label, is_kway) = kernel_pair;
            let run = |kernel: SortKernel| {
                let cfg = ExtSortConfig::new(128).with_tapes(4).with_kernel(kernel);
                metered(64, &data, |d| {
                    if is_kway {
                        balanced_kway_sort::<u32>(d, "in", "out", "j", &cfg).unwrap()
                    } else {
                        distribution_sort::<u32>(d, "in", "out", "j", &cfg).unwrap()
                    }
                })
            };
            let (d_cmp, r_cmp, io_cmp) = run(SortKernel::Comparison);
            for kernel in FAST_KERNELS {
                let k = kernel.name();
                let (d_fast, r_fast, io_fast) = run(kernel);
                assert_eq!(io_fast, io_cmp, "{bench}/{label}/{k}: I/O differs");
                assert_eq!(r_fast.records, r_cmp.records, "{bench}/{label}/{k}");
                assert_same_bytes::<u32>(&d_cmp, &d_fast, "out", &format!("{bench}/{label}/{k}"));
            }
        }
    }
}

#[test]
fn final_merge_kernels_identical() {
    let inputs: Vec<Vec<u32>> = (0..4u32)
        .map(|k| (0..300).map(|i| i * 4 + k).collect())
        .collect();
    let names: Vec<String> = (0..4).map(|i| format!("in{i}")).collect();
    let run = |kernel: SortKernel, pipeline: &PipelineConfig| {
        let disk = Disk::in_memory(128);
        for (i, v) in inputs.iter().enumerate() {
            disk.write_file(&format!("in{i}"), v).unwrap();
        }
        let before = disk.stats().snapshot();
        let r = merge_sorted_files_kernel::<u32>(&disk, &names, "out", pipeline, kernel).unwrap();
        let io = disk.stats().snapshot().delta(&before);
        (disk, r, io)
    };
    let off = PipelineConfig::off();
    let (d_cmp, r_cmp, io_cmp) = run(SortKernel::Comparison, &off);
    for kernel in FAST_KERNELS {
        let k = kernel.name();
        for &w in &WORKER_COUNTS {
            let pipe = if w == 1 {
                PipelineConfig::off()
            } else {
                PipelineConfig::with_workers(w)
            };
            let (d_fast, r_fast, io_fast) = run(kernel, &pipe);
            assert_eq!(io_fast, io_cmp, "{k}, workers {w}");
            assert_eq!(r_fast.records, r_cmp.records);
            // Same selects, billed to a different counter.
            assert_eq!(r_fast.key_ops, r_cmp.comparisons, "{k}, workers {w}");
            assert_eq!(r_fast.comparisons, 0);
            assert_same_bytes::<u32>(&d_cmp, &d_fast, "out", &format!("{k}, workers {w}"));
        }
    }
}

#[test]
fn keyed_payload_records_identical_across_kernels() {
    // KeyPayload's sort key is not a total order: the radix cleanup pass
    // (and ips4o's equal-key comparison finish) must reproduce the full-Ord
    // order exactly, even with heavy key duplication.
    let mut rng = Pcg64::new(0x517);
    let data: Vec<KeyPayload> = (0..1500)
        .map(|_| KeyPayload::new(rng.next_u64() % 32, rng.next_u64()))
        .collect();
    let base = ExtSortConfig::new(200).with_tapes(5);
    let (d_cmp, r_cmp, io_cmp) = metered(256, &data, |d| {
        polyphase_sort::<KeyPayload>(
            d,
            "in",
            "out",
            "pp",
            &base.clone().with_kernel(SortKernel::Comparison),
        )
        .unwrap()
    });
    for kernel in FAST_KERNELS {
        let k = kernel.name();
        for &w in &WORKER_COUNTS {
            let mut cfg = base.clone().with_kernel(kernel);
            if w > 1 {
                cfg = cfg.with_pipeline(PipelineConfig::with_workers(w));
            }
            let (d_fast, r_fast, io_fast) = metered(256, &data, |d| {
                polyphase_sort::<KeyPayload>(d, "in", "out", "pp", &cfg).unwrap()
            });
            assert_eq!(io_fast, io_cmp, "{k}, workers {w}: I/O differs");
            assert_eq!(r_fast.records, r_cmp.records);
            assert_same_bytes::<KeyPayload>(&d_cmp, &d_fast, "out", &format!("{k}, workers {w}"));
        }
    }
}

#[test]
fn seeded_random_configs_identical() {
    // Proptest-style sweep: random sizes, memory budgets, tape counts and
    // distributions from a fixed seed; every fast kernel must match
    // comparison on all.
    let mut rng = Pcg64::new(0xD1FF);
    for case in 0..24 {
        let bench = Benchmark::from_id((rng.next_u64() % 9) as usize);
        let n = 200 + (rng.next_u64() % 2300) as usize;
        let tapes = 3 + (rng.next_u64() % 5) as usize;
        let block = 64usize << (rng.next_u64() % 3);
        let rpb = block / 4;
        let mem = (tapes * rpb).max(32 + (rng.next_u64() % 200) as usize);
        let workers = 1 + (rng.next_u64() % 4) as usize;
        let data = generate_whole(bench, rng.next_u64(), &[n as u64]);

        let base = ExtSortConfig::new(mem).with_tapes(tapes);
        let (d_cmp, _, io_cmp) = metered(block, &data, |d| {
            polyphase_sort::<u32>(
                d,
                "in",
                "out",
                "pp",
                &base.clone().with_kernel(SortKernel::Comparison),
            )
            .unwrap()
        });
        for kernel in FAST_KERNELS {
            let cfg_fast = base
                .clone()
                .with_kernel(kernel)
                .with_pipeline(PipelineConfig::with_workers(workers));
            let (d_fast, _, io_fast) = metered(block, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg_fast).unwrap()
            });
            let ctx = format!(
                "case {case}: {bench}, {}, n={n}, mem={mem}, tapes={tapes}, block={block}, \
                 workers={workers}",
                kernel.name()
            );
            assert_eq!(io_fast, io_cmp, "{ctx}: I/O differs");
            assert_same_bytes::<u32>(&d_cmp, &d_fast, "out", &ctx);
        }
    }
}
