//! Differential tests for the wall-clock I/O knobs: the zero-copy block
//! codec and the batched submission backend must be *observationally
//! identical* to the copying codec and the serial backend — byte-identical
//! output files AND identical metered [`pdm::IoStats`] — across every
//! benchmark distribution, both record shapes (plain `u32` and the
//! non-total-key `KeyPayload`), pipelined and sequential formation, and
//! deliberately unaligned memory/block geometries that force partial final
//! blocks and mid-block staging. The knobs may only change *how fast* bytes
//! move, never which bytes move or how the PDM meters them.
//!
//! Like `kernel_differential`, the "proptest" is a fixed-seed PCG sweep so
//! failures replay deterministically (the `proptest` crate is not vendored).

use extsort::{
    balanced_kway_sort, fingerprint_file, is_sorted_file, polyphase_sort, ExtSortConfig,
    PipelineConfig, SortKernel,
};
use pdm::record::KeyPayload;
use pdm::{Codec, Disk, IoBackend, IoSnapshot, Record, ScratchDir};
use sim::rng::{Pcg64, Rng};
use workloads::{generate_whole, Benchmark};

/// Every codec × backend cell; the first is the reference configuration.
const CELLS: [(Codec, IoBackend); 4] = [
    (Codec::Copying, IoBackend::Serial),
    (Codec::Copying, IoBackend::Batched),
    (Codec::ZeroCopy, IoBackend::Serial),
    (Codec::ZeroCopy, IoBackend::Batched),
];

/// Runs `f` on a fresh in-memory disk with the given knobs, pre-loaded with
/// `data` under `in`, returning the disk, result, and I/O delta.
fn metered<R: Record, T>(
    block_bytes: usize,
    codec: Codec,
    backend: IoBackend,
    data: &[R],
    f: impl FnOnce(&Disk) -> T,
) -> (Disk, T, IoSnapshot) {
    let disk = Disk::in_memory(block_bytes)
        .with_codec(codec)
        .with_io_backend(backend);
    disk.write_file("in", data).unwrap();
    let before = disk.stats().snapshot();
    let out = f(&disk);
    let delta = disk.stats().snapshot().delta(&before);
    (disk, out, delta)
}

fn cell_name(codec: Codec, backend: IoBackend) -> String {
    format!("{}/{}", codec.name(), backend.name())
}

#[test]
fn polyphase_identical_across_codecs_and_backends_all_distributions() {
    for bench in Benchmark::ALL {
        let data = generate_whole(bench, 0x10CC, &[2000]);
        let cfg = ExtSortConfig::new(128).with_tapes(4);
        let (d_ref, r_ref, io_ref) = metered(64, CELLS[0].0, CELLS[0].1, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
        });
        for (codec, backend) in &CELLS[1..] {
            let (d, r, io) = metered(64, *codec, *backend, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
            });
            let cell = cell_name(*codec, *backend);
            assert_eq!(io, io_ref, "{bench}/{cell}: I/O counters differ");
            assert_eq!(r.io, r_ref.io, "{bench}/{cell}: reported I/O differs");
            assert_eq!(r.comparisons, r_ref.comparisons, "{bench}/{cell}");
            assert_eq!(r.key_ops, r_ref.key_ops, "{bench}/{cell}");
            assert_eq!(
                d.read_file::<u32>("out").unwrap(),
                d_ref.read_file::<u32>("out").unwrap(),
                "{bench}/{cell}: output bytes differ"
            );
        }
    }
}

#[test]
fn keyed_payloads_identical_across_cells_with_pipeline() {
    // 16-byte records with duplicate-heavy non-total keys, pipelined
    // formation: the zero-copy view path and batched write-behind must not
    // perturb record order or metering.
    let mut rng = Pcg64::new(0x0DEC);
    let data: Vec<KeyPayload> = (0..1500)
        .map(|_| KeyPayload::new(rng.next_u64() % 24, rng.next_u64()))
        .collect();
    for workers in [1usize, 3] {
        let mut cfg = ExtSortConfig::new(200).with_tapes(5);
        if workers > 1 {
            cfg = cfg.with_pipeline(PipelineConfig::with_workers(workers));
        }
        let (d_ref, r_ref, io_ref) = metered(256, CELLS[0].0, CELLS[0].1, &data, |d| {
            polyphase_sort::<KeyPayload>(d, "in", "out", "pp", &cfg).unwrap()
        });
        for (codec, backend) in &CELLS[1..] {
            let (d, r, io) = metered(256, *codec, *backend, &data, |d| {
                polyphase_sort::<KeyPayload>(d, "in", "out", "pp", &cfg).unwrap()
            });
            let cell = cell_name(*codec, *backend);
            assert_eq!(io, io_ref, "{cell}, workers {workers}: I/O differs");
            assert_eq!(r.records, r_ref.records, "{cell}, workers {workers}");
            assert_eq!(
                d.read_file::<KeyPayload>("out").unwrap(),
                d_ref.read_file::<KeyPayload>("out").unwrap(),
                "{cell}, workers {workers}: output bytes differ"
            );
        }
    }
}

#[test]
fn unaligned_boundaries_identical_across_cells() {
    // Geometries chosen so the final block of every file is partial and
    // memory loads straddle block boundaries: n is coprime to the
    // records-per-block, and the memory budget is not a multiple of it.
    for (block, n, mem) in [
        (64usize, 997u64, 101usize),
        (96, 1531, 149),
        (256, 2039, 333),
    ] {
        let data = generate_whole(Benchmark::Uniform, 0xA11A, &[n]);
        let cfg = ExtSortConfig::new(mem).with_tapes(3);
        let (d_ref, _, io_ref) = metered(block, CELLS[0].0, CELLS[0].1, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
        });
        // Verification helpers exercise the mid-block view/seek paths; their
        // answers must agree with the reference cell too.
        assert!(is_sorted_file::<u32>(&d_ref, "out").unwrap());
        let fp_ref = fingerprint_file::<u32>(&d_ref, "out").unwrap();
        for (codec, backend) in &CELLS[1..] {
            let (d, _, io) = metered(block, *codec, *backend, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
            });
            let cell = cell_name(*codec, *backend);
            assert_eq!(io, io_ref, "block={block}, n={n}, {cell}: I/O differs");
            assert_eq!(
                d.read_file::<u32>("out").unwrap(),
                d_ref.read_file::<u32>("out").unwrap(),
                "block={block}, n={n}, {cell}: output bytes differ"
            );
            assert!(is_sorted_file::<u32>(&d, "out").unwrap());
            assert_eq!(
                fingerprint_file::<u32>(&d, "out").unwrap(),
                fp_ref,
                "block={block}, n={n}, {cell}: fingerprint differs"
            );
        }
    }
}

#[test]
fn file_backed_disks_identical_across_cells() {
    // Same contract on real files: the batched backend issues genuinely
    // concurrent pread/pwrite here, and must still be byte- and
    // meter-identical to the serial one.
    let data = generate_whole(Benchmark::ZipfDuplicates, 0xF11E, &[1800]);
    let cfg = ExtSortConfig::new(160)
        .with_tapes(4)
        .with_pipeline(PipelineConfig::with_workers(2));
    let run = |codec: Codec, backend: IoBackend| {
        let scratch = ScratchDir::new("codec-io-diff").unwrap();
        let disk = Disk::on_files(scratch.path(), 64)
            .with_codec(codec)
            .with_io_backend(backend);
        disk.write_file("in", &data).unwrap();
        let before = disk.stats().snapshot();
        let r = balanced_kway_sort::<u32>(&disk, "in", "out", "j", &cfg).unwrap();
        let io = disk.stats().snapshot().delta(&before);
        let out = disk.read_file::<u32>("out").unwrap();
        drop(disk);
        (out, r, io, scratch)
    };
    let (out_ref, r_ref, io_ref, _s0) = run(CELLS[0].0, CELLS[0].1);
    for (codec, backend) in &CELLS[1..] {
        let (out, r, io, _s) = run(*codec, *backend);
        let cell = cell_name(*codec, *backend);
        assert_eq!(io, io_ref, "{cell}: I/O differs on files");
        assert_eq!(r.records, r_ref.records, "{cell}");
        assert_eq!(out, out_ref, "{cell}: output bytes differ on files");
    }
}

#[test]
fn seeded_random_geometries_identical_across_cells() {
    // Proptest-style sweep: random distribution, size, tapes, block size,
    // memory budget, workers, and kernel; every non-reference cell must
    // match the reference cell exactly.
    let mut rng = Pcg64::new(0xC0DE);
    for case in 0..16 {
        let bench = Benchmark::from_id((rng.next_u64() % 9) as usize);
        let n = 200 + (rng.next_u64() % 2000) as usize;
        let tapes = 3 + (rng.next_u64() % 4) as usize;
        let block = 64usize << (rng.next_u64() % 3);
        let rpb = block / 4;
        let mem = (tapes * rpb).max(32 + (rng.next_u64() % 200) as usize);
        let workers = 1 + (rng.next_u64() % 3) as usize;
        let kernel = [SortKernel::Radix, SortKernel::Ips4o, SortKernel::Comparison]
            [(rng.next_u64() % 3) as usize];
        let data = generate_whole(bench, rng.next_u64(), &[n as u64]);
        let cfg = ExtSortConfig::new(mem)
            .with_tapes(tapes)
            .with_kernel(kernel)
            .with_pipeline(PipelineConfig::with_workers(workers));
        let (d_ref, _, io_ref) = metered(block, CELLS[0].0, CELLS[0].1, &data, |d| {
            polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
        });
        for (codec, backend) in &CELLS[1..] {
            let (d, _, io) = metered(block, *codec, *backend, &data, |d| {
                polyphase_sort::<u32>(d, "in", "out", "pp", &cfg).unwrap()
            });
            let ctx = format!(
                "case {case}: {bench}, {}, n={n}, mem={mem}, tapes={tapes}, block={block}, \
                 workers={workers}, {}",
                kernel.name(),
                cell_name(*codec, *backend)
            );
            assert_eq!(io, io_ref, "{ctx}: I/O differs");
            assert_eq!(
                d.read_file::<u32>("out").unwrap(),
                d_ref.read_file::<u32>("out").unwrap(),
                "{ctx}: output bytes differ"
            );
        }
    }
}
