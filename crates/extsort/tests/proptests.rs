//! Property tests for the external-sorting machinery.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use extsort::run_formation::Distributor;
use extsort::stream::Bounded;
use extsort::{fingerprint_slice, merge_sorted_files, LoserTree, RecordStream, SliceStream};
use pdm::Disk;

/// Drains any stream into a vector.
fn drain<S: RecordStream<u32>>(mut s: S) -> Vec<u32> {
    let mut out = Vec::new();
    while let Some(x) = s.next_record().unwrap() {
        out.push(x);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn loser_tree_equals_sorted_concat(runs in vec(vec(any::<u32>(), 0..100), 0..12)) {
        let sorted_runs: Vec<Vec<u32>> = runs
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.sort_unstable();
                r
            })
            .collect();
        let mut expect: Vec<u32> = sorted_runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        let tree = LoserTree::new(
            sorted_runs.into_iter().map(SliceStream::new).collect(),
        )
        .unwrap();
        prop_assert_eq!(drain(tree), expect);
    }

    #[test]
    fn loser_tree_comparisons_near_nlogk(k in 2usize..32, per in 1usize..64) {
        let runs: Vec<Vec<u32>> = (0..k)
            .map(|s| (0..per).map(|i| (i * k + s) as u32).collect())
            .collect();
        let mut tree = LoserTree::new(runs.into_iter().map(SliceStream::new).collect()).unwrap();
        while tree.next_record().unwrap().is_some() {}
        let n = (k * per) as u64;
        let log2k = (usize::BITS - (k - 1).leading_zeros()) as u64;
        // Build costs ~k; each pop costs <= ceil(log2 k) (+1 slack for the
        // exhaustion comparisons at the end of each run).
        prop_assert!(tree.comparisons() <= k as u64 + n * (log2k + 1));
    }

    #[test]
    fn bounded_views_split_stream_exactly(data in vec(any::<u32>(), 0..200), cut in 0usize..200) {
        let cut = cut.min(data.len());
        let mut s = SliceStream::new(data.clone());
        let head = {
            let b = Bounded::new(&mut s, cut as u64);
            drain(b)
        };
        let tail = drain(s);
        prop_assert_eq!(head, &data[..cut]);
        prop_assert_eq!(tail, &data[cut..]);
    }

    #[test]
    fn distributor_layout_is_ideal_level(k in 2usize..8, runs in 1u64..300) {
        let mut d = Distributor::new(k);
        let mut actual = vec![0u64; k];
        for _ in 0..runs {
            actual[d.next_tape()] += 1;
        }
        let dummies = d.dummies();
        // The completed layout (real + dummies) must equal the targeted
        // ideal level exactly.
        for j in 0..k {
            prop_assert_eq!(actual[j] + dummies[j], d.ideal()[j]);
        }
        prop_assert_eq!(actual.iter().sum::<u64>(), runs);
        // Ideal levels satisfy the generalized Fibonacci recurrence, hence
        // the distribution has at most one nonzero deficit per level jump.
        prop_assert!(d.ideal().iter().sum::<u64>() >= runs);
    }

    #[test]
    fn merge_sorted_files_is_correct(parts in vec(vec(any::<u32>(), 0..150), 1..6)) {
        let disk = Disk::in_memory(64);
        let mut names = Vec::new();
        let mut all: Vec<u32> = Vec::new();
        for (i, p) in parts.iter().enumerate() {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            all.extend(&sorted);
            let name = format!("part{i}");
            disk.write_file(&name, &sorted).unwrap();
            names.push(name);
        }
        let report = merge_sorted_files::<u32>(&disk, &names, "merged").unwrap();
        prop_assert_eq!(report.records, all.len() as u64);
        let merged = disk.read_file::<u32>("merged").unwrap();
        prop_assert!(merged.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(fingerprint_slice(&merged), fingerprint_slice(&all));
    }

    #[test]
    fn splitter_balance_bounded_with_heavy_duplicates(
        runs in vec(vec(0u32..16, 0..200), 1..8),
        workers in 1usize..9,
    ) {
        // Keys drawn from a 16-value alphabet force massive duplication —
        // the worst case for range partitioning. Exact-rank cut selection
        // must still balance within one record of the ideal share (the
        // looser `ceil(total/W) + runs` bound is what the algorithm
        // guarantees publicly).
        use extsort::{plan_cuts, MergeSegment};
        let disk = Disk::in_memory(64);
        let mut segments = Vec::new();
        let mut total = 0u64;
        for (i, r) in runs.iter().enumerate() {
            let mut sorted = r.clone();
            sorted.sort_unstable();
            total += sorted.len() as u64;
            let name = format!("run{i}");
            disk.write_file(&name, &sorted).unwrap();
            segments.push(MergeSegment::new(name, 0, sorted.len() as u64));
        }
        let pool = pdm::BufferPool::default();
        let plan = plan_cuts::<u32>(&disk, &segments, workers, &pool).unwrap();
        prop_assert_eq!(plan.total, total);
        let bound = total.div_ceil(workers as u64) + runs.len() as u64;
        let mut sum = 0u64;
        for w in 0..plan.workers() {
            let share = plan.worker_records(w);
            prop_assert!(
                share <= bound,
                "worker {} got {} records, bound {}", w, share, bound
            );
            sum += share;
        }
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn sort_reports_are_consistent(data in vec(any::<u32>(), 1..2000), mem in 8usize..64) {
        let disk = Disk::in_memory(32);
        disk.write_file("in", &data).unwrap();
        let cfg = extsort::ExtSortConfig::new(mem.max(4 * 8)).with_tapes(4);
        let report = extsort::polyphase_sort::<u32>(&disk, "in", "out", "x", &cfg).unwrap();
        prop_assert_eq!(report.records, data.len() as u64);
        prop_assert_eq!(
            report.initial_runs,
            (data.len() as u64).div_ceil(cfg.mem_records as u64)
        );
        // Every pass reads and writes each record at most once; phases are
        // bounded by the Fibonacci growth of the run count.
        prop_assert!(report.io.bytes_written >= data.len() as u64 * 4);
        prop_assert!(report.merge_phases < 64);
    }
}
