//! PDM parameters and theoretical bounds.
//!
//! Vitter's parallel disk model measures sorting by block I/Os:
//!
//! ```text
//! Sort(N) = Θ( (n / D) · log_m n )      n = N/B,  m = M/B
//! ```
//!
//! [`PdmParams`] carries the five model parameters, checks the model's
//! side conditions (`M < N`, `1 ≤ DB ≤ M/2`) and evaluates the bound so the
//! benchmark harness can print *measured I/Os vs. theory* for every sort.

/// The PDM parameter set, in units of records (the model's "items").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PdmParams {
    /// Problem size N (records).
    pub n_records: u64,
    /// Internal memory size M (records).
    pub mem_records: u64,
    /// Block transfer size B (records).
    pub block_records: u64,
    /// Number of independent disk drives D.
    pub disks: u64,
    /// Number of CPUs P.
    pub procs: u64,
}

impl PdmParams {
    /// Creates and validates a parameter set.
    ///
    /// # Panics
    /// Panics if any parameter is zero, if `M ≥ N` (the problem would be
    /// in-core), or if `D·B > M/2` (the model's practicality condition).
    pub fn new(
        n_records: u64,
        mem_records: u64,
        block_records: u64,
        disks: u64,
        procs: u64,
    ) -> Self {
        let p = PdmParams {
            n_records,
            mem_records,
            block_records,
            disks,
            procs,
        };
        p.validate();
        p
    }

    /// Checks the PDM side conditions.
    pub fn validate(&self) {
        assert!(
            self.n_records > 0
                && self.mem_records > 0
                && self.block_records > 0
                && self.disks > 0
                && self.procs > 0,
            "PDM parameters must be positive: {self:?}"
        );
        assert!(
            self.mem_records < self.n_records,
            "PDM requires M < N (out-of-core); got M={} N={}",
            self.mem_records,
            self.n_records
        );
        assert!(
            self.disks * self.block_records <= self.mem_records / 2,
            "PDM requires D·B <= M/2; got D={} B={} M={}",
            self.disks,
            self.block_records,
            self.mem_records
        );
    }

    /// `n = N/B`, the problem size in blocks (rounded up).
    pub fn n_blocks(&self) -> u64 {
        self.n_records.div_ceil(self.block_records)
    }

    /// `m = M/B`, the memory size in blocks.
    pub fn m_blocks(&self) -> u64 {
        self.mem_records / self.block_records
    }

    /// `ceil(log_m n)`, the number of distribution/merge levels; at least 1.
    pub fn merge_levels(&self) -> u32 {
        let n = self.n_blocks() as f64;
        let m = self.m_blocks() as f64;
        if m <= 1.0 {
            return 1;
        }
        (n.ln() / m.ln()).ceil().max(1.0) as u32
    }

    /// The `Sort(N)` bound in block I/Os: `2·(n/D)·ceil(log_m n)` — the
    /// factor 2 counts each record read *and* written once per level, which
    /// is the constant distribution/merge sorts achieve.
    pub fn sort_io_bound(&self) -> u64 {
        2 * self.n_blocks().div_ceil(self.disks) * self.merge_levels() as u64
    }

    /// One full scan of the data: `n/D` parallel block I/Os.
    pub fn scan_ios(&self) -> u64 {
        self.n_blocks().div_ceil(self.disks)
    }

    /// Linear storage budget in blocks, `O(n)`.
    pub fn linear_storage_blocks(&self) -> u64 {
        self.n_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> PdmParams {
        // N=1Mi records, M=64Ki, B=1Ki, D=1, P=1 → n=1024, m=64.
        PdmParams::new(1 << 20, 1 << 16, 1 << 10, 1, 1)
    }

    #[test]
    fn blocks_arithmetic() {
        let p = p();
        assert_eq!(p.n_blocks(), 1024);
        assert_eq!(p.m_blocks(), 64);
    }

    #[test]
    fn n_blocks_rounds_up() {
        let p = PdmParams::new(1025, 512, 8, 1, 1);
        assert_eq!(p.n_blocks(), 129);
    }

    #[test]
    fn merge_levels_small_ratio() {
        // n=1024, m=64 → log_64(1024) = 1.66… → 2 levels.
        assert_eq!(p().merge_levels(), 2);
        // Barely out-of-core (n = m + 1): run formation + one merge pass.
        let q = PdmParams::new((1 << 16) + 1024, 1 << 16, 1 << 10, 1, 1);
        assert_eq!(q.merge_levels(), 2);
    }

    #[test]
    fn sort_bound_and_scan() {
        let p = p();
        assert_eq!(p.scan_ios(), 1024);
        assert_eq!(p.sort_io_bound(), 2 * 1024 * 2);
        let d4 = PdmParams::new(1 << 20, 1 << 16, 1 << 10, 4, 4);
        assert_eq!(d4.scan_ios(), 256);
    }

    #[test]
    #[should_panic(expected = "M < N")]
    fn in_core_rejected() {
        let _ = PdmParams::new(100, 100, 10, 1, 1);
    }

    #[test]
    #[should_panic(expected = "D·B <= M/2")]
    fn practicality_condition() {
        let _ = PdmParams::new(1 << 20, 64, 64, 2, 1);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_rejected() {
        let _ = PdmParams::new(0, 1, 1, 1, 1);
    }
}
