//! Batched multi-request I/O submission.
//!
//! [`IoBatch`] is an asynchronous submission/completion queue over a disk's
//! files, shaped like `io_uring`: callers *submit* any number of positional
//! reads and writes (each tagged with a monotonically increasing id), the
//! requests execute concurrently on a small worker pool, and callers *reap*
//! completions in whatever order they finish. The portable default backend
//! is a thread pool issuing `pread`/`pwrite` (see [`crate::disk`]); because
//! the API never exposes the execution mechanism — only submit ids and
//! [`IoCompletion`]s — an `io_uring` backend can replace the pool without
//! touching any caller.
//!
//! The batch moves bytes but does **not** meter I/O: the typed layers that
//! own the request semantics ([`crate::pipeline`]'s prefetch reader and
//! write-behind writer) bump [`crate::IoStats`] when they reap, exactly as
//! their serial counterparts do when they issue. That keeps the accounting
//! contract in one place and makes serial and batched backends
//! observationally identical.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::disk::{Disk, RawFile};
use crate::error::{PdmError, PdmResult};

/// How pipelined readers/writers issue their I/O (a [`Disk`] knob, see
/// [`Disk::with_io_backend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// One worker thread per stream issuing requests one at a time (the
    /// original pipeline design; depth only buffers, it does not overlap).
    #[default]
    Serial,
    /// Requests flow through an [`IoBatch`]: up to `depth` requests are in
    /// flight concurrently, so prefetch depth > 1 genuinely overlaps.
    Batched,
}

impl IoBackend {
    /// Parses a backend name (`serial` or `batched`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "serial" => Some(IoBackend::Serial),
            "batched" => Some(IoBackend::Batched),
            _ => None,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            IoBackend::Serial => "serial",
            IoBackend::Batched => "batched",
        }
    }
}

/// Handle to a file registered with an [`IoBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileHandle(usize);

/// A finished request. `buf` returns the request's buffer to the caller
/// (the filled read buffer, or the written data for recycling).
#[derive(Debug)]
pub struct IoCompletion {
    /// The id returned by the submit call.
    pub id: u64,
    /// The request buffer, handed back for reuse.
    pub buf: Vec<u8>,
    /// Bytes transferred: the (possibly short) read count, or the full
    /// length for writes.
    pub result: PdmResult<usize>,
}

enum Job {
    Read {
        id: u64,
        file: RawFile,
        offset: u64,
        buf: Vec<u8>,
    },
    Write {
        id: u64,
        file: RawFile,
        offset: u64,
        data: Vec<u8>,
    },
}

struct Queue {
    jobs: Mutex<(VecDeque<Job>, bool)>, // (pending, closed)
    ready: Condvar,
}

/// A batched submission/completion queue backed by a worker pool.
pub struct IoBatch {
    disk: Disk,
    queue: Arc<Queue>,
    // Kept so `done_rx` can never disconnect while requests are in flight.
    _done_tx: Sender<IoCompletion>,
    done_rx: Receiver<IoCompletion>,
    workers: Vec<JoinHandle<()>>,
    files: Vec<RawFile>,
    next_id: u64,
    in_flight: usize,
    /// One open request stream per worker lane, for queue diagnostics.
    _streams: Vec<crate::stats::StreamGuard>,
}

impl std::fmt::Debug for IoBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoBatch")
            .field("workers", &self.workers.len())
            .field("files", &self.files.len())
            .field("in_flight", &self.in_flight)
            .finish()
    }
}

impl Disk {
    /// Creates a batched submission queue with `workers` concurrent request
    /// slots (clamped to at least one).
    pub fn io_batch(&self, workers: usize) -> IoBatch {
        IoBatch::new(self.clone(), workers)
    }
}

impl IoBatch {
    fn new(disk: Disk, workers: usize) -> Self {
        let queue = Arc::new(Queue {
            jobs: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });
        let (done_tx, done_rx) = channel();
        let workers = workers.max(1);
        let handles = (0..workers)
            .map(|_| {
                let queue = queue.clone();
                let done = done_tx.clone();
                std::thread::spawn(move || worker_loop(&queue, &done))
            })
            .collect();
        let streams = (0..workers).map(|_| disk.stats().stream_opened()).collect();
        IoBatch {
            disk,
            queue,
            _done_tx: done_tx,
            done_rx,
            workers: handles,
            files: Vec::new(),
            next_id: 0,
            in_flight: 0,
            _streams: streams,
        }
    }

    /// Registers an existing file for reading; returns its handle and byte
    /// length.
    pub fn register_read(&mut self, name: &str) -> PdmResult<(FileHandle, u64)> {
        let (raw, len) = self.disk.open_raw(name)?;
        self.files.push(raw);
        Ok((FileHandle(self.files.len() - 1), len))
    }

    /// Creates and registers a new file for writing (meters the creation,
    /// like any other writer).
    pub fn register_create(&mut self, name: &str) -> PdmResult<FileHandle> {
        let raw = self.disk.create_raw(name)?;
        self.files.push(raw);
        Ok(FileHandle(self.files.len() - 1))
    }

    /// Submits a positional read of `buf.len()` bytes at `offset`; returns
    /// the request id. Ids increase by one per submit (reads and writes
    /// share the sequence).
    pub fn submit_read(&mut self, file: FileHandle, offset: u64, buf: Vec<u8>) -> u64 {
        let id = self.next_id;
        self.push(Job::Read {
            id,
            file: self.files[file.0].clone(),
            offset,
            buf,
        });
        id
    }

    /// Submits a positional write of all of `data` at `offset`; returns the
    /// request id.
    pub fn submit_write(&mut self, file: FileHandle, offset: u64, data: Vec<u8>) -> u64 {
        let id = self.next_id;
        self.push(Job::Write {
            id,
            file: self.files[file.0].clone(),
            offset,
            data,
        });
        id
    }

    fn push(&mut self, job: Job) {
        self.next_id += 1;
        self.in_flight += 1;
        let mut guard = self.queue.jobs.lock().unwrap();
        guard.0.push_back(job);
        drop(guard);
        self.queue.ready.notify_one();
    }

    /// Requests submitted but not yet reaped.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Blocks until some request completes; completions arrive in
    /// whichever order the requests finish, not submit order. Returns
    /// `None` when nothing is in flight.
    pub fn reap(&mut self) -> Option<IoCompletion> {
        if self.in_flight == 0 {
            return None;
        }
        let done = self.done_rx.recv().expect("io batch workers alive");
        self.in_flight -= 1;
        Some(done)
    }

    /// Returns a completion if one is already available.
    pub fn try_reap(&mut self) -> Option<IoCompletion> {
        if self.in_flight == 0 {
            return None;
        }
        match self.done_rx.try_recv() {
            Ok(done) => {
                self.in_flight -= 1;
                Some(done)
            }
            Err(_) => None,
        }
    }

    /// Flushes a registered file's OS buffers. All of the file's requests
    /// must have been reaped first (the batch cannot order a sync against
    /// requests still in flight).
    pub fn sync(&mut self, file: FileHandle) -> PdmResult<()> {
        if self.in_flight != 0 {
            return Err(PdmError::InvalidConfig(
                "sync with requests in flight: reap them first".to_string(),
            ));
        }
        self.files[file.0].sync()
    }
}

impl Drop for IoBatch {
    fn drop(&mut self) {
        {
            let mut guard = self.queue.jobs.lock().unwrap();
            guard.1 = true;
            // Abandoned requests are dropped (an unfinished stream is torn
            // down, same as dropping a serial pipeline mid-flight).
            guard.0.clear();
        }
        self.queue.ready.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(queue: &Queue, done: &Sender<IoCompletion>) {
    loop {
        let job = {
            let mut guard = queue.jobs.lock().unwrap();
            loop {
                if let Some(job) = guard.0.pop_front() {
                    break job;
                }
                if guard.1 {
                    return;
                }
                guard = queue.ready.wait(guard).unwrap();
            }
        };
        let completion = match job {
            Job::Read {
                id,
                file,
                offset,
                mut buf,
            } => {
                let result = file.read_at(offset, &mut buf);
                IoCompletion { id, buf, result }
            }
            Job::Write {
                id,
                file,
                offset,
                data,
            } => {
                let result = file.write_at(offset, &data).map(|()| data.len());
                IoCompletion {
                    id,
                    buf: data,
                    result,
                }
            }
        };
        if done.send(completion).is_err() {
            return; // receiver gone: the batch is being torn down
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::ScratchDir;

    fn both_backends() -> Vec<(Disk, Option<ScratchDir>)> {
        let scratch = ScratchDir::new("pdm-batch-test").unwrap();
        let file_disk = Disk::on_files(scratch.path(), 64);
        vec![(Disk::in_memory(64), None), (file_disk, Some(scratch))]
    }

    #[test]
    fn batched_writes_then_reads_roundtrip() {
        for (disk, _guard) in both_backends() {
            let mut batch = disk.io_batch(4);
            let out = batch.register_create("data").unwrap();
            // Submit 8 out-of-order block writes, reap them all.
            for i in (0..8u64).rev() {
                batch.submit_write(out, i * 4, (i as u32).to_le_bytes().to_vec());
            }
            assert_eq!(batch.in_flight(), 8);
            while batch.in_flight() > 0 {
                let c = batch.reap().unwrap();
                assert_eq!(c.result.unwrap(), 4);
            }
            batch.sync(out).unwrap();

            let mut batch = disk.io_batch(4);
            let (input, len) = batch.register_read("data").unwrap();
            assert_eq!(len, 32);
            let mut ids = Vec::new();
            for i in 0..8u64 {
                ids.push(batch.submit_read(input, i * 4, vec![0u8; 4]));
            }
            let mut seen = vec![None; 8];
            while let Some(c) = batch.reap() {
                assert_eq!(c.result.unwrap(), 4);
                let idx = ids.iter().position(|&id| id == c.id).unwrap();
                seen[idx] = Some(u32::from_le_bytes(c.buf[..4].try_into().unwrap()));
            }
            assert_eq!(
                seen,
                (0..8u32).map(Some).collect::<Vec<_>>(),
                "each completion carries its request's block"
            );
        }
    }

    #[test]
    fn short_reads_report_actual_count() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("short").unwrap();
            f.append(b"abcdef").unwrap();
            f.sync().unwrap();
            let mut batch = disk.io_batch(2);
            let (h, _) = batch.register_read("short").unwrap();
            batch.submit_read(h, 4, vec![0u8; 4]);
            let c = batch.reap().unwrap();
            assert_eq!(c.result.unwrap(), 2);
            assert_eq!(&c.buf[..2], b"ef");
        }
    }

    #[test]
    fn reap_on_empty_batch_is_none() {
        let disk = Disk::in_memory(64);
        let mut batch = disk.io_batch(2);
        assert!(batch.reap().is_none());
        assert!(batch.try_reap().is_none());
    }

    #[test]
    fn sync_rejects_in_flight_requests() {
        let disk = Disk::in_memory(64);
        let mut batch = disk.io_batch(1);
        let h = batch.register_create("f").unwrap();
        batch.submit_write(h, 0, vec![1, 2, 3]);
        assert!(batch.sync(h).is_err());
        batch.reap().unwrap().result.unwrap();
        batch.sync(h).unwrap();
    }

    #[test]
    fn register_create_meters_file_creation() {
        let disk = Disk::in_memory(64);
        let mut batch = disk.io_batch(1);
        batch.register_create("f").unwrap();
        assert_eq!(disk.stats().snapshot().files_created, 1);
    }

    #[test]
    fn drop_with_in_flight_requests_joins_cleanly() {
        let disk = Disk::in_memory(64);
        let mut batch = disk.io_batch(2);
        let h = batch.register_create("f").unwrap();
        for i in 0..16 {
            batch.submit_write(h, i * 8, vec![0u8; 8]);
        }
        drop(batch); // must not hang or panic
    }

    #[test]
    fn backend_parse_roundtrip() {
        for b in [IoBackend::Serial, IoBackend::Batched] {
            assert_eq!(IoBackend::parse(b.name()), Some(b));
        }
        assert_eq!(IoBackend::parse("uring"), None);
    }
}
