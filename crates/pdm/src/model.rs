//! Disk service-time models.
//!
//! Converts block-transfer counts into virtual time: one block I/O costs a
//! positioning overhead (`seek`) plus `bytes / bandwidth` of transfer. The
//! default model approximates the 8 GB SCSI drives of the paper's Alpha
//! cluster (c. 2000 hardware); a faster model is provided for "what would
//! this look like today" ablations.
//!
//! [`ContentionModel`] extends the linear model with queueing: when several
//! request streams share one device, aggregate bandwidth is fair-shared
//! (total transfer time is unchanged) but *positioning* is not — a device
//! that can keep only `queue_depth` stream positions resident must re-seek
//! whenever an interleaved request evicts a stream's head position.
//! [`DiskModel::shared_service_time`] prices a snapshot delta under a
//! declared stream count; the excess over [`DiskModel::service_time`] is the
//! queue wait surfaced as `io.queue.*` metrics.

use sim::SimDuration;

/// Queueing behaviour of a device shared by concurrent request streams.
///
/// `queue_depth` is the NCQ-style knob: the number of concurrent streams the
/// device services without losing sequentiality. A single-spindle SCSI disk
/// has depth 1 — two interleaved sequential scans degrade to alternating
/// full seeks. An NVMe device with deep queues keeps many streams effectively
/// sequential. Requests beyond the depth also pay `settle` per block for
/// queue arbitration.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentionModel {
    /// Concurrent streams serviced without positional interference.
    pub queue_depth: u32,
    /// Per-block settle charge on the queue-saturated share of requests.
    pub settle: SimDuration,
}

impl ContentionModel {
    /// A device with no queueing penalty at any concurrency.
    pub fn unbounded() -> Self {
        ContentionModel {
            queue_depth: u32::MAX,
            settle: SimDuration::ZERO,
        }
    }

    /// Fraction of requests that arrive with their stream's position evicted:
    /// with `queue_depth` resident positions round-robined over `streams`
    /// openers, a request continues its run with probability
    /// `min(1, queue_depth/streams)`.
    pub fn excess_fraction(&self, streams: usize) -> f64 {
        if streams <= 1 {
            return 0.0;
        }
        let depth = self.queue_depth.max(1) as f64;
        (1.0 - depth / streams as f64).max(0.0)
    }
}

/// A linear disk service-time model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    /// Human-readable name, shown in the Table 1 reproduction.
    pub name: &'static str,
    /// Positioning overhead charged per block access (seek + rotational
    /// latency, amortized; sequential access pays a reduced share).
    pub seek: SimDuration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fraction of the full seek charged on *sequential* block accesses
    /// (track-to-track movement + controller overhead). Random accesses pay
    /// the full seek.
    pub sequential_seek_fraction: f64,
    /// Queueing behaviour under concurrent request streams.
    pub contention: ContentionModel,
}

impl DiskModel {
    /// Late-90s SCSI drive, like the 8 GB drives in the paper's cluster:
    /// ~8 ms average positioning, ~18 MB/s sustained transfer.
    pub fn scsi_2000() -> Self {
        DiskModel {
            name: "SCSI-2000 (8ms seek, 18MB/s)",
            seek: SimDuration::from_millis(8.0),
            bytes_per_sec: 18.0e6,
            sequential_seek_fraction: 0.05,
            // One spindle, no command queueing to speak of: a second
            // concurrent stream already forces head movement per block.
            contention: ContentionModel {
                queue_depth: 1,
                settle: SimDuration::from_micros(500.0),
            },
        }
    }

    /// A modern NVMe-class device for ablations: negligible positioning,
    /// 2 GB/s transfer.
    pub fn nvme_modern() -> Self {
        DiskModel {
            name: "NVMe-modern (20us access, 2GB/s)",
            seek: SimDuration::from_micros(20.0),
            bytes_per_sec: 2.0e9,
            sequential_seek_fraction: 0.5,
            // Deep NCQ: tens of streams scale near-linearly.
            contention: ContentionModel {
                queue_depth: 32,
                settle: SimDuration::ZERO,
            },
        }
    }

    /// An idealized zero-cost disk, useful to isolate CPU/network effects.
    pub fn free() -> Self {
        DiskModel {
            name: "free (zero-cost)",
            seek: SimDuration::ZERO,
            bytes_per_sec: f64::INFINITY,
            sequential_seek_fraction: 0.0,
            contention: ContentionModel::unbounded(),
        }
    }

    /// Service time for one sequential block transfer of `bytes`.
    pub fn sequential_block(&self, bytes: u64) -> SimDuration {
        self.seek.scale(self.sequential_seek_fraction) + self.transfer(bytes)
    }

    /// Service time for one random (seeking) block transfer of `bytes`.
    pub fn random_block(&self, bytes: u64) -> SimDuration {
        self.seek + self.transfer(bytes)
    }

    /// Pure transfer time for `bytes`.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec.is_infinite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(bytes as f64 / self.bytes_per_sec)
        }
    }

    /// Total service time for an I/O snapshot delta as if the device were
    /// dedicated to one stream: sequential positioning for the plain
    /// transfers, full-seek cost for random reads, transfer priced by actual
    /// payload bytes (so a partial block pays one positioning charge but
    /// only its own bytes of transfer).
    pub fn service_time(&self, io: &crate::stats::IoSnapshot) -> SimDuration {
        let total_blocks = io.total_blocks();
        if total_blocks == 0 {
            return SimDuration::ZERO;
        }
        let seq_blocks = total_blocks.saturating_sub(io.random_reads);
        let seq_seek = self.seek.scale(self.sequential_seek_fraction) * seq_blocks as f64;
        let rand_seek = self.seek * io.random_reads as f64;
        seq_seek + rand_seek + self.transfer(io.total_bytes())
    }

    /// Extra queueing delay the delta suffers when `streams` concurrent
    /// request streams share this device. Fair bandwidth sharing leaves the
    /// aggregate transfer time unchanged; what degrades is positioning: the
    /// evicted share of sequential blocks pays the full seek it was spared,
    /// and every queue-saturated block pays the settle charge.
    ///
    /// Always non-negative, zero at `streams <= 1`, and monotone
    /// non-decreasing in `streams` — so `shared_service_time` can never
    /// undercut the dedicated price.
    pub fn queue_wait(&self, io: &crate::stats::IoSnapshot, streams: usize) -> SimDuration {
        let excess = self.contention.excess_fraction(streams);
        let total_blocks = io.total_blocks();
        if excess == 0.0 || total_blocks == 0 {
            return SimDuration::ZERO;
        }
        let seq_blocks = total_blocks.saturating_sub(io.random_reads);
        let lost_fraction = (1.0 - self.sequential_seek_fraction).max(0.0);
        let evicted_seeks = self.seek.scale(lost_fraction) * (seq_blocks as f64 * excess);
        let settle = self.contention.settle * (total_blocks as f64 * excess);
        evicted_seeks + settle
    }

    /// Service time for the delta when `streams` concurrent request streams
    /// share the device: the dedicated price plus [`Self::queue_wait`].
    pub fn shared_service_time(
        &self,
        io: &crate::stats::IoSnapshot,
        streams: usize,
    ) -> SimDuration {
        self.service_time(io) + self.queue_wait(io, streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoSnapshot;

    #[test]
    fn transfer_scales_with_bytes() {
        let m = DiskModel::scsi_2000();
        let t1 = m.transfer(18_000_000);
        assert!((t1.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(m.transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn random_costs_more_than_sequential() {
        let m = DiskModel::scsi_2000();
        assert!(m.random_block(32 * 1024) > m.sequential_block(32 * 1024));
    }

    #[test]
    fn free_disk_is_free() {
        let m = DiskModel::free();
        assert_eq!(m.random_block(1 << 20), SimDuration::ZERO);
        assert_eq!(m.sequential_block(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn service_time_of_empty_delta_is_zero() {
        let m = DiskModel::scsi_2000();
        assert_eq!(m.service_time(&IoSnapshot::default()), SimDuration::ZERO);
    }

    fn test_model() -> DiskModel {
        DiskModel {
            name: "test",
            seek: SimDuration::from_millis(10.0),
            bytes_per_sec: 1e6,
            sequential_seek_fraction: 0.1,
            contention: ContentionModel {
                queue_depth: 1,
                settle: SimDuration::from_millis(1.0),
            },
        }
    }

    #[test]
    fn service_time_combines_components() {
        let m = test_model();
        let io = IoSnapshot {
            blocks_read: 3,
            blocks_written: 1,
            bytes_read: 3_000_000,
            bytes_written: 1_000_000,
            random_reads: 1,
            seek_bytes: 0,
            files_created: 0,
        };
        // 3 sequential blocks * 1ms + 1 random * 10ms + 4s transfer.
        let t = m.service_time(&io);
        assert!((t.as_secs() - (0.003 + 0.010 + 4.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn nvme_much_faster_than_scsi() {
        let io = IoSnapshot {
            blocks_read: 100,
            blocks_written: 100,
            bytes_read: 100 << 15,
            bytes_written: 100 << 15,
            random_reads: 0,
            seek_bytes: 0,
            files_created: 0,
        };
        assert!(
            DiskModel::nvme_modern().service_time(&io)
                < DiskModel::scsi_2000().service_time(&io) / 10.0
        );
    }

    /// Regression for the partial-block charging rule: a short (partial)
    /// block pays exactly one positioning charge, and transfer is priced by
    /// the bytes actually moved — not by blocks times a nominal block size.
    #[test]
    fn partial_blocks_pay_one_seek_and_their_own_bytes() {
        let m = test_model();
        let full = IoSnapshot {
            blocks_read: 1,
            bytes_read: 1_000_000,
            ..Default::default()
        };
        let partial = IoSnapshot {
            blocks_read: 1,
            bytes_read: 100_000,
            ..Default::default()
        };
        // Same single sequential positioning charge (1ms)...
        assert!((m.service_time(&full).as_secs() - (0.001 + 1.0)).abs() < 1e-9);
        // ...but the partial block's transfer shrinks with its payload.
        assert!((m.service_time(&partial).as_secs() - (0.001 + 0.1)).abs() < 1e-9);
        let diff = m.service_time(&full) - m.service_time(&partial);
        assert!((diff.as_secs() - m.transfer(900_000).as_secs()).abs() < 1e-9);
    }

    fn sample_deltas() -> Vec<IoSnapshot> {
        vec![
            IoSnapshot::default(),
            IoSnapshot {
                blocks_read: 1,
                bytes_read: 4096,
                ..Default::default()
            },
            IoSnapshot {
                blocks_read: 64,
                blocks_written: 64,
                bytes_read: 64 << 12,
                bytes_written: 64 << 12,
                ..Default::default()
            },
            IoSnapshot {
                blocks_read: 100,
                bytes_read: 100 << 12,
                random_reads: 17,
                seek_bytes: 17 << 12,
                ..Default::default()
            },
            IoSnapshot {
                blocks_read: 3,
                blocks_written: 1,
                bytes_read: 3_000_000,
                bytes_written: 999,
                random_reads: 1,
                seek_bytes: 999,
                files_created: 2,
            },
        ]
    }

    /// The contention invariants: sharing never undercuts the dedicated
    /// price, is exact at one stream, and only worsens with more streams.
    #[test]
    fn shared_service_time_never_undercuts_dedicated() {
        for m in [
            DiskModel::scsi_2000(),
            DiskModel::nvme_modern(),
            DiskModel::free(),
            test_model(),
        ] {
            for io in sample_deltas() {
                assert_eq!(m.shared_service_time(&io, 0), m.service_time(&io));
                assert_eq!(m.shared_service_time(&io, 1), m.service_time(&io));
                let mut prev = m.service_time(&io);
                for streams in 2..=64usize {
                    let shared = m.shared_service_time(&io, streams);
                    assert!(
                        shared >= m.service_time(&io),
                        "{}: shared < dedicated at {streams} streams",
                        m.name
                    );
                    assert!(
                        shared >= prev,
                        "{}: shared time not monotone at {streams} streams",
                        m.name
                    );
                    prev = shared;
                }
            }
        }
    }

    /// The SCSI cliff vs NVMe scaling: at 4 streams the SCSI model pays
    /// near-full seeks per block while NVMe (queue depth 32) pays nothing.
    #[test]
    fn queue_depth_separates_scsi_from_nvme() {
        let io = IoSnapshot {
            blocks_read: 512,
            blocks_written: 512,
            bytes_read: 512 << 12,
            bytes_written: 512 << 12,
            ..Default::default()
        };
        let scsi = DiskModel::scsi_2000();
        let nvme = DiskModel::nvme_modern();
        assert_eq!(nvme.queue_wait(&io, 4), SimDuration::ZERO);
        assert_eq!(
            nvme.shared_service_time(&io, 4),
            nvme.service_time(&io),
            "nvme must keep near-linear scaling below its queue depth"
        );
        // scsi at 4 streams: 3/4 of sequential blocks lose their position.
        let wait = scsi.queue_wait(&io, 4);
        assert!(
            wait > scsi.service_time(&io),
            "scsi queueing must dominate the dedicated time: wait={wait}"
        );
        // Beyond its queue depth even NVMe starts paying.
        assert!(nvme.queue_wait(&io, 64) > SimDuration::ZERO);
    }

    #[test]
    fn free_disk_never_queues() {
        let m = DiskModel::free();
        for io in sample_deltas() {
            assert_eq!(m.shared_service_time(&io, 16), SimDuration::ZERO);
        }
    }

    #[test]
    fn excess_fraction_shape() {
        let c = ContentionModel {
            queue_depth: 2,
            settle: SimDuration::ZERO,
        };
        assert_eq!(c.excess_fraction(0), 0.0);
        assert_eq!(c.excess_fraction(1), 0.0);
        assert_eq!(c.excess_fraction(2), 0.0);
        assert!((c.excess_fraction(4) - 0.5).abs() < 1e-12);
        assert!((c.excess_fraction(8) - 0.75).abs() < 1e-12);
        assert_eq!(ContentionModel::unbounded().excess_fraction(1 << 20), 0.0);
    }
}
