//! Disk service-time models.
//!
//! Converts block-transfer counts into virtual time: one block I/O costs a
//! positioning overhead (`seek`) plus `bytes / bandwidth` of transfer. The
//! default model approximates the 8 GB SCSI drives of the paper's Alpha
//! cluster (c. 2000 hardware); a faster model is provided for "what would
//! this look like today" ablations.

use sim::SimDuration;

/// A linear disk service-time model.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskModel {
    /// Human-readable name, shown in the Table 1 reproduction.
    pub name: &'static str,
    /// Positioning overhead charged per block access (seek + rotational
    /// latency, amortized; sequential access pays a reduced share).
    pub seek: SimDuration,
    /// Sustained transfer bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fraction of the full seek charged on *sequential* block accesses
    /// (track-to-track movement + controller overhead). Random accesses pay
    /// the full seek.
    pub sequential_seek_fraction: f64,
}

impl DiskModel {
    /// Late-90s SCSI drive, like the 8 GB drives in the paper's cluster:
    /// ~8 ms average positioning, ~18 MB/s sustained transfer.
    pub fn scsi_2000() -> Self {
        DiskModel {
            name: "SCSI-2000 (8ms seek, 18MB/s)",
            seek: SimDuration::from_millis(8.0),
            bytes_per_sec: 18.0e6,
            sequential_seek_fraction: 0.05,
        }
    }

    /// A modern NVMe-class device for ablations: negligible positioning,
    /// 2 GB/s transfer.
    pub fn nvme_modern() -> Self {
        DiskModel {
            name: "NVMe-modern (20us access, 2GB/s)",
            seek: SimDuration::from_micros(20.0),
            bytes_per_sec: 2.0e9,
            sequential_seek_fraction: 0.5,
        }
    }

    /// An idealized zero-cost disk, useful to isolate CPU/network effects.
    pub fn free() -> Self {
        DiskModel {
            name: "free (zero-cost)",
            seek: SimDuration::ZERO,
            bytes_per_sec: f64::INFINITY,
            sequential_seek_fraction: 0.0,
        }
    }

    /// Service time for one sequential block transfer of `bytes`.
    pub fn sequential_block(&self, bytes: u64) -> SimDuration {
        self.seek.scale(self.sequential_seek_fraction) + self.transfer(bytes)
    }

    /// Service time for one random (seeking) block transfer of `bytes`.
    pub fn random_block(&self, bytes: u64) -> SimDuration {
        self.seek + self.transfer(bytes)
    }

    /// Pure transfer time for `bytes`.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        if self.bytes_per_sec.is_infinite() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(bytes as f64 / self.bytes_per_sec)
        }
    }

    /// Total service time for an I/O snapshot delta: sequential cost for the
    /// plain transfers, full-seek cost for random reads.
    pub fn service_time(&self, io: &crate::stats::IoSnapshot) -> SimDuration {
        let seq_blocks = io.total_blocks().saturating_sub(io.random_reads);
        // Average payload per block over the delta (blocks may be partial).
        let total_blocks = io.total_blocks();
        if total_blocks == 0 {
            return SimDuration::ZERO;
        }
        let seq_seek = self.seek.scale(self.sequential_seek_fraction) * seq_blocks as f64;
        let rand_seek = self.seek * io.random_reads as f64;
        seq_seek + rand_seek + self.transfer(io.total_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::IoSnapshot;

    #[test]
    fn transfer_scales_with_bytes() {
        let m = DiskModel::scsi_2000();
        let t1 = m.transfer(18_000_000);
        assert!((t1.as_secs() - 1.0).abs() < 1e-9);
        assert_eq!(m.transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn random_costs_more_than_sequential() {
        let m = DiskModel::scsi_2000();
        assert!(m.random_block(32 * 1024) > m.sequential_block(32 * 1024));
    }

    #[test]
    fn free_disk_is_free() {
        let m = DiskModel::free();
        assert_eq!(m.random_block(1 << 20), SimDuration::ZERO);
        assert_eq!(m.sequential_block(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn service_time_of_empty_delta_is_zero() {
        let m = DiskModel::scsi_2000();
        assert_eq!(m.service_time(&IoSnapshot::default()), SimDuration::ZERO);
    }

    #[test]
    fn service_time_combines_components() {
        let m = DiskModel {
            name: "test",
            seek: SimDuration::from_millis(10.0),
            bytes_per_sec: 1e6,
            sequential_seek_fraction: 0.1,
        };
        let io = IoSnapshot {
            blocks_read: 3,
            blocks_written: 1,
            bytes_read: 3_000_000,
            bytes_written: 1_000_000,
            random_reads: 1,
            seek_bytes: 0,
            files_created: 0,
        };
        // 3 sequential blocks * 1ms + 1 random * 10ms + 4s transfer.
        let t = m.service_time(&io);
        assert!((t.as_secs() - (0.003 + 0.010 + 4.0)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn nvme_much_faster_than_scsi() {
        let io = IoSnapshot {
            blocks_read: 100,
            blocks_written: 100,
            bytes_read: 100 << 15,
            bytes_written: 100 << 15,
            random_reads: 0,
            seek_bytes: 0,
            files_created: 0,
        };
        assert!(
            DiskModel::nvme_modern().service_time(&io)
                < DiskModel::scsi_2000().service_time(&io) / 10.0
        );
    }
}
