//! Disk arrays with striped access (the `D > 1` half of the PDM).
//!
//! The PDM's optimal sorts access the `D` disks *independently* during reads
//! but write in a *striped* manner. [`DiskArray`] provides exactly that: a
//! striped writer lays logical block `i` on disk `i mod D`, and the striped
//! reader fetches blocks back in logical order (each fetch touching one
//! disk, so `D` consecutive fetches can proceed in parallel on real
//! hardware — the array reports the *parallel I/O* count as the per-disk
//! maximum, which is what the `Sort(N)` bound counts).

use crate::disk::Disk;
use crate::error::PdmResult;
use crate::file::{BlockReader, BlockWriter};
use crate::record::Record;
use crate::stats::IoSnapshot;

/// An array of `D` independent disks with identical geometry.
#[derive(Debug, Clone)]
pub struct DiskArray {
    disks: Vec<Disk>,
}

impl DiskArray {
    /// Builds an array from per-disk handles.
    ///
    /// # Panics
    /// Panics if `disks` is empty or block sizes differ.
    pub fn new(disks: Vec<Disk>) -> Self {
        assert!(!disks.is_empty(), "disk array needs at least one disk");
        let b = disks[0].block_bytes();
        assert!(
            disks.iter().all(|d| d.block_bytes() == b),
            "all disks in an array must share one block size"
        );
        DiskArray { disks }
    }

    /// Creates an array of `d` in-memory disks.
    pub fn in_memory(d: usize, block_bytes: usize) -> Self {
        Self::new(
            (0..d)
                .map(|i| Disk::in_memory(block_bytes).with_label(format!("disk{i}")))
                .collect(),
        )
    }

    /// Number of disks `D`.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// True if the array has no disks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    /// Access to an individual disk.
    pub fn disk(&self, i: usize) -> &Disk {
        &self.disks[i]
    }

    /// Sum of all per-disk counters.
    pub fn total_io(&self) -> IoSnapshot {
        self.disks
            .iter()
            .map(|d| d.stats().snapshot())
            .fold(IoSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// The PDM parallel-I/O count: the busiest disk's block transfers.
    /// With perfect striping this is `total / D`.
    pub fn parallel_ios(&self) -> u64 {
        self.disks
            .iter()
            .map(|d| d.stats().snapshot().total_blocks())
            .max()
            .unwrap_or(0)
    }

    /// Starts a striped write of a logical file: block `i` of the stream
    /// goes to disk `i mod D` under the name `"{base}.d{j}"`.
    pub fn striped_writer<R: Record>(&self, base: &str) -> PdmResult<StripedWriter<R>> {
        let rpb = crate::file::records_per_block::<R>(&self.disks[0])?;
        let writers = self
            .disks
            .iter()
            .enumerate()
            .map(|(j, d)| d.create_writer::<R>(&format!("{base}.d{j}")))
            .collect::<PdmResult<Vec<_>>>()?;
        Ok(StripedWriter {
            writers,
            records_per_block: rpb,
            in_block: 0,
            current: 0,
            total: 0,
        })
    }

    /// Opens a striped logical file for reading in logical order.
    pub fn striped_reader<R: Record>(&self, base: &str) -> PdmResult<StripedReader<R>> {
        let rpb = crate::file::records_per_block::<R>(&self.disks[0])?;
        let readers = self
            .disks
            .iter()
            .enumerate()
            .map(|(j, d)| d.open_reader::<R>(&format!("{base}.d{j}")))
            .collect::<PdmResult<Vec<_>>>()?;
        let total = readers.iter().map(|r| r.len()).sum();
        Ok(StripedReader {
            readers,
            records_per_block: rpb,
            in_block: 0,
            current: 0,
            remaining: total,
            total,
        })
    }

    /// Removes the stripe files of a logical file (idempotent).
    pub fn remove(&self, base: &str) -> PdmResult<()> {
        for (j, d) in self.disks.iter().enumerate() {
            d.remove(&format!("{base}.d{j}"))?;
        }
        Ok(())
    }
}

/// Writes a logical record stream striped block-by-block across the array.
#[derive(Debug)]
pub struct StripedWriter<R: Record> {
    writers: Vec<BlockWriter<R>>,
    records_per_block: usize,
    in_block: usize,
    current: usize,
    total: u64,
}

impl<R: Record> StripedWriter<R> {
    /// Appends one record to the logical stream.
    pub fn push(&mut self, r: R) -> PdmResult<()> {
        self.writers[self.current].push(r)?;
        self.total += 1;
        self.in_block += 1;
        if self.in_block == self.records_per_block {
            self.in_block = 0;
            self.current = (self.current + 1) % self.writers.len();
        }
        Ok(())
    }

    /// Appends a slice.
    pub fn push_all(&mut self, rs: &[R]) -> PdmResult<()> {
        for &r in rs {
            self.push(r)?;
        }
        Ok(())
    }

    /// Closes all stripes; returns the logical record count.
    pub fn finish(self) -> PdmResult<u64> {
        for w in self.writers {
            w.finish()?;
        }
        Ok(self.total)
    }
}

/// Reads a striped logical file back in logical record order.
#[derive(Debug)]
pub struct StripedReader<R: Record> {
    readers: Vec<BlockReader<R>>,
    records_per_block: usize,
    in_block: usize,
    current: usize,
    remaining: u64,
    total: u64,
}

impl<R: Record> StripedReader<R> {
    /// Total logical records.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when the logical file is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Next record in logical order.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let r = self.readers[self.current].next_record()?;
        debug_assert!(r.is_some(), "stripe shorter than logical length");
        self.remaining -= 1;
        self.in_block += 1;
        if self.in_block == self.records_per_block {
            self.in_block = 0;
            self.current = (self.current + 1) % self.readers.len();
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_roundtrip_preserves_order() {
        let arr = DiskArray::in_memory(3, 16); // 4 u32 per block
        let data: Vec<u32> = (0..100).collect();
        let mut w = arr.striped_writer::<u32>("f").unwrap();
        w.push_all(&data).unwrap();
        assert_eq!(w.finish().unwrap(), 100);
        let mut r = arr.striped_reader::<u32>("f").unwrap();
        assert_eq!(r.len(), 100);
        let mut out = Vec::new();
        while let Some(x) = r.next_record().unwrap() {
            out.push(x);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn blocks_distributed_round_robin() {
        let arr = DiskArray::in_memory(2, 16);
        let data: Vec<u32> = (0..16).collect(); // 4 blocks → 2 per disk
        let mut w = arr.striped_writer::<u32>("g").unwrap();
        w.push_all(&data).unwrap();
        w.finish().unwrap();
        assert_eq!(arr.disk(0).stats().snapshot().blocks_written, 2);
        assert_eq!(arr.disk(1).stats().snapshot().blocks_written, 2);
    }

    #[test]
    fn parallel_ios_is_per_disk_max() {
        let arr = DiskArray::in_memory(2, 16);
        let data: Vec<u32> = (0..20).collect(); // 5 blocks → 3 + 2
        let mut w = arr.striped_writer::<u32>("h").unwrap();
        w.push_all(&data).unwrap();
        w.finish().unwrap();
        assert_eq!(arr.parallel_ios(), 3);
        assert_eq!(arr.total_io().blocks_written, 5);
    }

    #[test]
    fn empty_logical_file() {
        let arr = DiskArray::in_memory(2, 16);
        let w = arr.striped_writer::<u32>("e").unwrap();
        assert_eq!(w.finish().unwrap(), 0);
        let mut r = arr.striped_reader::<u32>("e").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn remove_stripes() {
        let arr = DiskArray::in_memory(2, 16);
        let mut w = arr.striped_writer::<u32>("rm").unwrap();
        w.push(1).unwrap();
        w.finish().unwrap();
        assert!(arr.disk(0).exists("rm.d0"));
        arr.remove("rm").unwrap();
        assert!(!arr.disk(0).exists("rm.d0"));
        assert!(!arr.disk(1).exists("rm.d1"));
    }

    #[test]
    fn tiny_blocks_yield_typed_error() {
        let arr = DiskArray::in_memory(2, 2); // a u32 does not fit in a block
        assert!(matches!(
            arr.striped_writer::<u32>("t"),
            Err(crate::error::PdmError::InvalidConfig(_))
        ));
        assert!(matches!(
            arr.striped_reader::<u32>("t"),
            Err(crate::error::PdmError::InvalidConfig(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn empty_array_rejected() {
        let _ = DiskArray::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "share one block size")]
    fn mismatched_blocks_rejected() {
        let _ = DiskArray::new(vec![Disk::in_memory(16), Disk::in_memory(32)]);
    }
}
