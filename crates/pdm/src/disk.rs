//! A simulated disk drive: a namespace of block files.
//!
//! A [`Disk`] owns a set of named files, a block size, shared I/O counters
//! and a service-time model. Two storage backends are provided:
//!
//! * **Files** — each named file is a real file in a scratch directory; the
//!   external sorts really hit the filesystem (the default for experiments).
//! * **Memory** — each named file is an in-memory byte buffer; identical
//!   semantics and identical I/O *accounting*, but fast enough for property
//!   tests that run thousands of sorts.
//!
//! Typed, block-buffered access is layered on top in [`crate::file`].

use std::collections::HashMap;
use std::fs;
#[cfg(not(unix))]
use std::io::Read;
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::Arc;

use std::sync::Mutex;

use crate::batch::IoBackend;
use crate::error::{PdmError, PdmResult};
use crate::file::Codec;
use crate::model::DiskModel;
use crate::stats::IoStats;

/// Which storage backend a [`Disk`] uses.
#[derive(Debug, Clone)]
pub enum Backend {
    /// In-memory byte buffers (fast, for tests).
    Memory,
    /// Real files under the given directory (real I/O, for experiments).
    Files(PathBuf),
}

/// A simulated disk: cheaply cloneable handle to a file namespace plus
/// shared I/O counters.
///
/// ```
/// use pdm::Disk;
///
/// let disk = Disk::in_memory(16); // 4 u32 records per block
/// disk.write_file::<u32>("data", &[10, 20, 30, 40, 50]).unwrap();
/// assert_eq!(disk.len_records::<u32>("data").unwrap(), 5);
/// // Every transfer is metered in PDM blocks: 5 records = 2 blocks.
/// assert_eq!(disk.stats().snapshot().blocks_written, 2);
/// let mut reader = disk.open_reader::<u32>("data").unwrap();
/// assert_eq!(reader.read_at(3).unwrap(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    inner: Arc<DiskInner>,
}

#[derive(Debug)]
struct DiskInner {
    backend: BackendImpl,
    block_bytes: usize,
    stats: IoStats,
    model: DiskModel,
    label: String,
    codec: Codec,
    io_backend: IoBackend,
}

#[derive(Debug)]
enum BackendImpl {
    Memory(Mutex<HashMap<String, Arc<Mutex<Vec<u8>>>>>),
    Files { dir: PathBuf },
}

/// An open file on a disk (byte-granular; used by the typed block layer).
/// Clones share the underlying storage, so a handle can be shipped to the
/// batched-I/O worker pool while the opener keeps using it.
#[derive(Debug, Clone)]
pub(crate) enum RawFile {
    Mem(Arc<Mutex<Vec<u8>>>),
    File(Arc<SharedFile>),
}

/// A real file shared across threads. Positional reads/writes use
/// `pread`/`pwrite` on unix (no lock, genuine concurrency); `cursor` guards
/// the shared seek position for appends and the portable fallbacks.
#[derive(Debug)]
pub(crate) struct SharedFile {
    file: fs::File,
    cursor: Mutex<()>,
}

impl SharedFile {
    fn new(file: fs::File) -> Self {
        SharedFile {
            file,
            cursor: Mutex::new(()),
        }
    }
}

impl Disk {
    /// Creates an in-memory disk with the given block size in bytes.
    pub fn in_memory(block_bytes: usize) -> Self {
        Self::new(Backend::Memory, block_bytes)
    }

    /// Creates a file-backed disk storing its files under `dir` (which must
    /// exist — typically a [`crate::tempdir::ScratchDir`]).
    pub fn on_files(dir: impl Into<PathBuf>, block_bytes: usize) -> Self {
        Self::new(Backend::Files(dir.into()), block_bytes)
    }

    /// Creates a disk with an explicit backend.
    ///
    /// # Panics
    /// Panics if `block_bytes == 0`.
    pub fn new(backend: Backend, block_bytes: usize) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let backend = match backend {
            Backend::Memory => BackendImpl::Memory(Mutex::new(HashMap::new())),
            Backend::Files(dir) => BackendImpl::Files { dir },
        };
        Disk {
            inner: Arc::new(DiskInner {
                backend,
                block_bytes,
                stats: IoStats::new(),
                model: DiskModel::scsi_2000(),
                label: "disk".to_string(),
                codec: Codec::default(),
                io_backend: IoBackend::default(),
            }),
        }
    }

    /// Reclaims (or clones) the inner state for the `with_*` builders; must
    /// run before the disk is shared or the namespace handle is cloned.
    fn unshare(self) -> DiskInner {
        Arc::try_unwrap(self.inner).unwrap_or_else(|arc| DiskInner {
            backend: match &arc.backend {
                BackendImpl::Memory(m) => {
                    BackendImpl::Memory(Mutex::new(m.lock().unwrap().clone()))
                }
                BackendImpl::Files { dir } => BackendImpl::Files { dir: dir.clone() },
            },
            block_bytes: arc.block_bytes,
            stats: arc.stats.clone(),
            model: arc.model.clone(),
            label: arc.label.clone(),
            codec: arc.codec,
            io_backend: arc.io_backend,
        })
    }

    /// Returns a copy of this disk handle with a different service model.
    /// Must be called before the disk is shared (it clones the namespace
    /// handle but resets nothing else).
    pub fn with_model(self, model: DiskModel) -> Self {
        let inner = self.unshare();
        Disk {
            inner: Arc::new(DiskInner { model, ..inner }),
        }
    }

    /// Returns a copy of this disk handle with a display label.
    pub fn with_label(self, label: impl Into<String>) -> Self {
        let label = label.into();
        let inner = self.unshare();
        Disk {
            inner: Arc::new(DiskInner { label, ..inner }),
        }
    }

    /// Returns a copy of this disk handle with the given block codec. All
    /// typed readers/writers opened afterwards use it.
    pub fn with_codec(self, codec: Codec) -> Self {
        let inner = self.unshare();
        Disk {
            inner: Arc::new(DiskInner { codec, ..inner }),
        }
    }

    /// Returns a copy of this disk handle with the given pipelined-I/O
    /// backend. Prefetch readers and write-behind writers opened afterwards
    /// use it.
    pub fn with_io_backend(self, io_backend: IoBackend) -> Self {
        let inner = self.unshare();
        Disk {
            inner: Arc::new(DiskInner {
                io_backend,
                ..inner
            }),
        }
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> usize {
        self.inner.block_bytes
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// The disk's service-time model.
    pub fn model(&self) -> &DiskModel {
        &self.inner.model
    }

    /// Display label.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// The block codec used by typed readers/writers on this disk.
    pub fn codec(&self) -> Codec {
        self.inner.codec
    }

    /// The pipelined-I/O backend used by prefetch/write-behind on this disk.
    pub fn io_backend(&self) -> IoBackend {
        self.inner.io_backend
    }

    /// Creates a new file, failing if it already exists.
    pub(crate) fn create_raw(&self, name: &str) -> PdmResult<RawFile> {
        self.inner.stats.on_create();
        match &self.inner.backend {
            BackendImpl::Memory(map) => {
                let mut map = map.lock().unwrap();
                if map.contains_key(name) {
                    return Err(PdmError::AlreadyExists(name.to_string()));
                }
                let buf = Arc::new(Mutex::new(Vec::new()));
                map.insert(name.to_string(), buf.clone());
                Ok(RawFile::Mem(buf))
            }
            BackendImpl::Files { dir } => {
                let path = dir.join(name);
                if path.exists() {
                    return Err(PdmError::AlreadyExists(name.to_string()));
                }
                if let Some(parent) = path.parent() {
                    fs::create_dir_all(parent)?;
                }
                let f = fs::File::create(&path)?;
                Ok(RawFile::File(Arc::new(SharedFile::new(f))))
            }
        }
    }

    /// Opens an existing file for reading; returns the handle and byte size.
    pub(crate) fn open_raw(&self, name: &str) -> PdmResult<(RawFile, u64)> {
        match &self.inner.backend {
            BackendImpl::Memory(map) => {
                let map = map.lock().unwrap();
                let buf = map
                    .get(name)
                    .ok_or_else(|| PdmError::NotFound(name.to_string()))?
                    .clone();
                let len = buf.lock().unwrap().len() as u64;
                Ok((RawFile::Mem(buf), len))
            }
            BackendImpl::Files { dir } => {
                let path = dir.join(name);
                let f = fs::File::open(&path).map_err(|_| PdmError::NotFound(name.to_string()))?;
                let len = f.metadata()?.len();
                Ok((RawFile::File(Arc::new(SharedFile::new(f))), len))
            }
        }
    }

    /// Deletes a file (idempotent: missing files are ignored).
    pub fn remove(&self, name: &str) -> PdmResult<()> {
        match &self.inner.backend {
            BackendImpl::Memory(map) => {
                map.lock().unwrap().remove(name);
                Ok(())
            }
            BackendImpl::Files { dir } => match fs::remove_file(dir.join(name)) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
                Err(e) => Err(e.into()),
            },
        }
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        match &self.inner.backend {
            BackendImpl::Memory(map) => map.lock().unwrap().contains_key(name),
            BackendImpl::Files { dir } => dir.join(name).exists(),
        }
    }

    /// Byte length of a file.
    pub fn len_bytes(&self, name: &str) -> PdmResult<u64> {
        match &self.inner.backend {
            BackendImpl::Memory(map) => map
                .lock()
                .unwrap()
                .get(name)
                .map(|b| b.lock().unwrap().len() as u64)
                .ok_or_else(|| PdmError::NotFound(name.to_string())),
            BackendImpl::Files { dir } => {
                let meta = fs::metadata(dir.join(name))
                    .map_err(|_| PdmError::NotFound(name.to_string()))?;
                Ok(meta.len())
            }
        }
    }

    /// Renames a file (no data movement, so no I/O is metered — matches a
    /// directory operation on a real filesystem).
    pub fn rename(&self, old: &str, new: &str) -> PdmResult<()> {
        match &self.inner.backend {
            BackendImpl::Memory(map) => {
                let mut map = map.lock().unwrap();
                if map.contains_key(new) {
                    return Err(PdmError::AlreadyExists(new.to_string()));
                }
                let buf = map
                    .remove(old)
                    .ok_or_else(|| PdmError::NotFound(old.to_string()))?;
                map.insert(new.to_string(), buf);
                Ok(())
            }
            BackendImpl::Files { dir } => {
                let to = dir.join(new);
                if to.exists() {
                    return Err(PdmError::AlreadyExists(new.to_string()));
                }
                let from = dir.join(old);
                if !from.exists() {
                    return Err(PdmError::NotFound(old.to_string()));
                }
                fs::rename(from, to)?;
                Ok(())
            }
        }
    }

    /// Truncates a file to `bytes` — used by tests to inject torn-write
    /// corruption that readers must detect.
    pub fn truncate(&self, name: &str, bytes: u64) -> PdmResult<()> {
        match &self.inner.backend {
            BackendImpl::Memory(map) => {
                let map = map.lock().unwrap();
                let buf = map
                    .get(name)
                    .ok_or_else(|| PdmError::NotFound(name.to_string()))?;
                buf.lock().unwrap().truncate(bytes as usize);
                Ok(())
            }
            BackendImpl::Files { dir } => {
                let f = fs::OpenOptions::new()
                    .write(true)
                    .open(dir.join(name))
                    .map_err(|_| PdmError::NotFound(name.to_string()))?;
                f.set_len(bytes)?;
                Ok(())
            }
        }
    }
}

impl RawFile {
    /// Appends bytes at the end of the file.
    pub(crate) fn append(&self, buf: &[u8]) -> PdmResult<()> {
        match self {
            RawFile::Mem(v) => {
                v.lock().unwrap().extend_from_slice(buf);
                Ok(())
            }
            RawFile::File(f) => {
                let _cursor = f.cursor.lock().unwrap();
                let mut h = &f.file;
                h.seek(SeekFrom::End(0))?;
                h.write_all(buf)?;
                Ok(())
            }
        }
    }

    /// Reads up to `buf.len()` bytes starting at `offset`; returns the count
    /// actually read (short only at end of file). On unix this is a `pread`
    /// — no locking, so in-flight batched requests genuinely overlap.
    pub(crate) fn read_at(&self, offset: u64, buf: &mut [u8]) -> PdmResult<usize> {
        match self {
            RawFile::Mem(v) => {
                let v = v.lock().unwrap();
                let off = offset as usize;
                if off >= v.len() {
                    return Ok(0);
                }
                let n = buf.len().min(v.len() - off);
                buf[..n].copy_from_slice(&v[off..off + n]);
                Ok(n)
            }
            #[cfg(unix)]
            RawFile::File(f) => {
                use std::os::unix::fs::FileExt;
                let mut read = 0;
                while read < buf.len() {
                    match f.file.read_at(&mut buf[read..], offset + read as u64) {
                        Ok(0) => break,
                        Ok(n) => read += n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(read)
            }
            #[cfg(not(unix))]
            RawFile::File(f) => {
                let _cursor = f.cursor.lock().unwrap();
                let mut h = &f.file;
                h.seek(SeekFrom::Start(offset))?;
                let mut read = 0;
                while read < buf.len() {
                    match h.read(&mut buf[read..]) {
                        Ok(0) => break,
                        Ok(n) => read += n,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(e.into()),
                    }
                }
                Ok(read)
            }
        }
    }

    /// Writes all of `buf` at `offset` (extending the file if needed). On
    /// unix this is a `pwrite` — no locking, so batched write-behind keeps
    /// multiple requests in flight.
    pub(crate) fn write_at(&self, offset: u64, buf: &[u8]) -> PdmResult<()> {
        match self {
            RawFile::Mem(v) => {
                let mut v = v.lock().unwrap();
                let end = offset as usize + buf.len();
                if v.len() < end {
                    v.resize(end, 0);
                }
                v[offset as usize..end].copy_from_slice(buf);
                Ok(())
            }
            #[cfg(unix)]
            RawFile::File(f) => {
                use std::os::unix::fs::FileExt;
                f.file.write_all_at(buf, offset)?;
                Ok(())
            }
            #[cfg(not(unix))]
            RawFile::File(f) => {
                let _cursor = f.cursor.lock().unwrap();
                let mut h = &f.file;
                h.seek(SeekFrom::Start(offset))?;
                h.write_all(buf)?;
                Ok(())
            }
        }
    }

    /// Flushes OS buffers (no-op for the memory backend).
    pub(crate) fn sync(&self) -> PdmResult<()> {
        match self {
            RawFile::Mem(_) => Ok(()),
            RawFile::File(f) => {
                let mut h = &f.file;
                h.flush()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::ScratchDir;

    fn both_backends() -> Vec<(Disk, Option<ScratchDir>)> {
        let scratch = ScratchDir::new("pdm-disk-test").unwrap();
        let file_disk = Disk::on_files(scratch.path(), 64);
        vec![(Disk::in_memory(64), None), (file_disk, Some(scratch))]
    }

    #[test]
    fn create_write_read_roundtrip() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("a").unwrap();
            f.append(b"hello ").unwrap();
            f.append(b"world").unwrap();
            f.sync().unwrap();
            let (r, len) = disk.open_raw("a").unwrap();
            assert_eq!(len, 11);
            let mut buf = vec![0u8; 11];
            assert_eq!(r.read_at(0, &mut buf).unwrap(), 11);
            assert_eq!(&buf, b"hello world");
        }
    }

    #[test]
    fn read_at_offset_and_past_end() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("b").unwrap();
            f.append(b"0123456789").unwrap();
            let (r, _) = disk.open_raw("b").unwrap();
            let mut buf = [0u8; 4];
            assert_eq!(r.read_at(6, &mut buf).unwrap(), 4);
            assert_eq!(&buf, b"6789");
            assert_eq!(r.read_at(8, &mut buf).unwrap(), 2);
            assert_eq!(r.read_at(100, &mut buf).unwrap(), 0);
        }
    }

    #[test]
    fn write_at_extends_and_overwrites() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("w").unwrap();
            // Out-of-order positional writes assemble the same bytes as
            // in-order appends (the batched write-behind contract).
            f.write_at(6, b"world").unwrap();
            f.write_at(0, b"hello ").unwrap();
            f.sync().unwrap();
            let (r, len) = disk.open_raw("w").unwrap();
            assert_eq!(len, 11);
            let mut buf = vec![0u8; 11];
            assert_eq!(r.read_at(0, &mut buf).unwrap(), 11);
            assert_eq!(&buf, b"hello world");
            // Overwrite in place does not extend.
            f.write_at(0, b"HELLO").unwrap();
            assert_eq!(disk.len_bytes("w").unwrap(), 11);
        }
    }

    #[test]
    fn create_duplicate_fails() {
        for (disk, _guard) in both_backends() {
            disk.create_raw("dup").unwrap();
            assert!(matches!(
                disk.create_raw("dup"),
                Err(PdmError::AlreadyExists(_))
            ));
        }
    }

    #[test]
    fn open_missing_fails() {
        for (disk, _guard) in both_backends() {
            assert!(matches!(disk.open_raw("nope"), Err(PdmError::NotFound(_))));
        }
    }

    #[test]
    fn remove_is_idempotent() {
        for (disk, _guard) in both_backends() {
            disk.create_raw("gone").unwrap();
            assert!(disk.exists("gone"));
            disk.remove("gone").unwrap();
            assert!(!disk.exists("gone"));
            disk.remove("gone").unwrap(); // second remove is fine
        }
    }

    #[test]
    fn rename_moves_content() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("old").unwrap();
            f.append(b"abc").unwrap();
            f.sync().unwrap();
            disk.rename("old", "new").unwrap();
            assert!(!disk.exists("old"));
            assert_eq!(disk.len_bytes("new").unwrap(), 3);
            // Renaming onto an existing name or from a missing one fails.
            disk.create_raw("blocker").unwrap();
            assert!(matches!(
                disk.rename("new", "blocker"),
                Err(PdmError::AlreadyExists(_))
            ));
            assert!(matches!(
                disk.rename("ghost", "x"),
                Err(PdmError::NotFound(_))
            ));
        }
    }

    #[test]
    fn len_and_truncate() {
        for (disk, _guard) in both_backends() {
            let f = disk.create_raw("t").unwrap();
            f.append(&[0u8; 100]).unwrap();
            f.sync().unwrap();
            assert_eq!(disk.len_bytes("t").unwrap(), 100);
            disk.truncate("t", 37).unwrap();
            assert_eq!(disk.len_bytes("t").unwrap(), 37);
        }
    }

    #[test]
    fn files_created_counter() {
        let disk = Disk::in_memory(64);
        disk.create_raw("x").unwrap();
        disk.create_raw("y").unwrap();
        assert_eq!(disk.stats().snapshot().files_created, 2);
    }

    #[test]
    fn with_model_and_label() {
        let disk = Disk::in_memory(64)
            .with_model(DiskModel::free())
            .with_label("node3");
        assert_eq!(disk.model().name, "free (zero-cost)");
        assert_eq!(disk.label(), "node3");
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        let _ = Disk::in_memory(0);
    }
}
