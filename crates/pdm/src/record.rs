//! Fixed-size record encoding.
//!
//! Everything that flows through the external sorters is a [`Record`]: a
//! `Copy + Ord` value with a fixed little-endian byte encoding, so block files
//! are simply packed arrays and any record can be addressed by index (the
//! pivot-sampling step of the paper seeks to every `stride`-th record of a
//! sorted file).

/// A fixed-size, totally ordered record that can round-trip through bytes.
///
/// Implementations must guarantee `read_from(write_to(x)) == x` and that the
/// byte encoding is exactly [`Record::SIZE`] bytes.
pub trait Record: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Serializes into `buf` (exactly `SIZE` bytes).
    ///
    /// # Panics
    /// Panics if `buf.len() != SIZE`.
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes from `buf` (exactly `SIZE` bytes).
    ///
    /// # Panics
    /// Panics if `buf.len() != SIZE`.
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! int_record {
    ($t:ty) => {
        impl Record for $t {
            const SIZE: usize = std::mem::size_of::<$t>();

            fn write_to(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("record size mismatch"))
            }
        }
    };
}

int_record!(u32);
int_record!(u64);
int_record!(i32);
int_record!(i64);
int_record!(u16);

/// A 16-byte record with a 64-bit sort key and a 64-bit opaque payload, for
/// workloads where records are wider than their keys (e.g. database rows).
/// Ordering is by `key` first, then `payload` (total order keeps sorts
/// deterministic under duplicate keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeyPayload {
    /// The sort key.
    pub key: u64,
    /// Carried payload (not interpreted by the sorters).
    pub payload: u64,
}

impl KeyPayload {
    /// Convenience constructor.
    pub fn new(key: u64, payload: u64) -> Self {
        KeyPayload { key, payload }
    }
}

impl Record for KeyPayload {
    const SIZE: usize = 16;

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::SIZE, "record size mismatch");
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::SIZE, "record size mismatch");
        KeyPayload {
            key: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            payload: u64::from_le_bytes(buf[8..].try_into().unwrap()),
        }
    }
}

/// Encodes a slice of records into a packed byte vector.
pub fn encode_all<R: Record>(records: &[R]) -> Vec<u8> {
    let mut out = vec![0u8; records.len() * R::SIZE];
    for (r, chunk) in records.iter().zip(out.chunks_exact_mut(R::SIZE)) {
        r.write_to(chunk);
    }
    out
}

/// Decodes a packed byte slice into records.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `R::SIZE`.
pub fn decode_all<R: Record>(bytes: &[u8]) -> Vec<R> {
    assert_eq!(
        bytes.len() % R::SIZE,
        0,
        "byte length {} not a multiple of record size {}",
        bytes.len(),
        R::SIZE
    );
    bytes.chunks_exact(R::SIZE).map(R::read_from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Record>(x: R) {
        let mut buf = vec![0u8; R::SIZE];
        x.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), x);
    }

    #[test]
    fn u32_roundtrip() {
        for x in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn i32_roundtrip_preserves_sign() {
        for x in [i32::MIN, -1, 0, 1, i32::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn u64_i64_u16_roundtrip() {
        roundtrip(u64::MAX - 3);
        roundtrip(i64::MIN + 5);
        roundtrip(0xBEEFu16);
    }

    #[test]
    fn keypayload_roundtrip_and_order() {
        roundtrip(KeyPayload::new(42, 0xFFFF_FFFF_FFFF_FFFF));
        let a = KeyPayload::new(1, 100);
        let b = KeyPayload::new(2, 0);
        let c = KeyPayload::new(2, 1);
        assert!(a < b && b < c);
        assert_eq!(KeyPayload::SIZE, 16);
    }

    #[test]
    fn encode_decode_all() {
        let v: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let bytes = encode_all(&v);
        assert_eq!(bytes.len(), 400);
        assert_eq!(decode_all::<u32>(&bytes), v);
    }

    #[test]
    fn encode_empty() {
        let v: Vec<u64> = vec![];
        assert!(encode_all(&v).is_empty());
        assert!(decode_all::<u64>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_misaligned_panics() {
        let _ = decode_all::<u32>(&[1, 2, 3]);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.write_to(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }
}
