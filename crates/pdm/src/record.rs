//! Fixed-size record encoding.
//!
//! Everything that flows through the external sorters is a [`Record`]: a
//! `Copy + Ord` value with a fixed little-endian byte encoding, so block files
//! are simply packed arrays and any record can be addressed by index (the
//! pivot-sampling step of the paper seeks to every `stride`-th record of a
//! sorted file).

/// A fixed-size, totally ordered record that can round-trip through bytes.
///
/// Implementations must guarantee `read_from(write_to(x)) == x` and that the
/// byte encoding is exactly [`Record::SIZE`] bytes.
pub trait Record: Copy + Ord + Send + Sync + std::fmt::Debug + 'static {
    /// Encoded size in bytes.
    const SIZE: usize;

    /// Whether [`Record::sort_key`] is meaningful: `a.sort_key() <
    /// b.sort_key()` implies `a < b`, and `a < b` implies `a.sort_key() <=
    /// b.sort_key()`. Kernels that sort by key (radix run formation, the
    /// cached-key loser tree) only engage when this is `true`.
    const HAS_SORT_KEY: bool = false;

    /// Whether the key is a *total* order: equal keys imply equal records.
    /// When `false` (e.g. [`KeyPayload`]: payloads tie-break), key-based
    /// kernels must finish equal-key groups with the full `Ord`.
    const KEY_IS_TOTAL: bool = false;

    /// An order-preserving fixed-width key (see [`Record::HAS_SORT_KEY`]).
    /// The default is a constant, which satisfies the contract vacuously.
    fn sort_key(&self) -> u64 {
        0
    }

    /// Serializes into `buf` (exactly `SIZE` bytes).
    ///
    /// # Panics
    /// Panics if `buf.len() != SIZE`.
    fn write_to(&self, buf: &mut [u8]);

    /// Deserializes from `buf` (exactly `SIZE` bytes).
    ///
    /// # Panics
    /// Panics if `buf.len() != SIZE`.
    fn read_from(buf: &[u8]) -> Self;

    /// Length-checked deserialization: `None` when `buf` is not exactly
    /// `SIZE` bytes (e.g. a truncated tail block). The block layer turns
    /// this into a typed [`crate::PdmError`] instead of a panic.
    fn try_read_from(buf: &[u8]) -> Option<Self> {
        if buf.len() == Self::SIZE {
            Some(Self::read_from(buf))
        } else {
            None
        }
    }

    /// Bulk-encodes `records` into `buf` in one pass. The default loops
    /// over [`Record::write_to`]; POD implementations specialize to a
    /// single `copy_from_slice`.
    ///
    /// # Panics
    /// Panics if `buf.len() != records.len() * SIZE`.
    fn write_slice_to(records: &[Self], buf: &mut [u8]) {
        assert_eq!(
            buf.len(),
            records.len() * Self::SIZE,
            "buffer length does not match record count"
        );
        for (r, chunk) in records.iter().zip(buf.chunks_exact_mut(Self::SIZE)) {
            r.write_to(chunk);
        }
    }

    /// Bulk-decodes `buf` and appends to `out` in one pass. The default
    /// loops over [`Record::read_from`]; POD implementations specialize to
    /// a single `copy_from_slice`.
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of `SIZE`.
    fn read_slice_from(buf: &[u8], out: &mut Vec<Self>) {
        assert_eq!(
            buf.len() % Self::SIZE,
            0,
            "byte length {} not a multiple of record size {}",
            buf.len(),
            Self::SIZE
        );
        out.extend(buf.chunks_exact(Self::SIZE).map(Self::read_from));
    }

    /// Borrows encoded bytes as a record slice **without copying**: `Some`
    /// only when the in-memory layout of `[Self]` is exactly the file
    /// encoding (little-endian POD), `bytes` is properly aligned for
    /// `Self`, and the length is a whole number of records. The default is
    /// `None` (no zero-copy view; callers fall back to a decoding copy).
    fn view_slice(bytes: &[u8]) -> Option<&[Self]> {
        let _ = bytes;
        None
    }

    /// Borrows a record slice as its encoded bytes **without copying**:
    /// `Some` under the same layout conditions as [`Record::view_slice`]
    /// (a `&[Self]` is always aligned, so only the layout matters).
    fn view_bytes(records: &[Self]) -> Option<&[u8]> {
        let _ = records;
        None
    }

    /// Bulk-decodes `buf` into an existing slice (exactly `dst.len()`
    /// records). The default loops over [`Record::read_from`]; POD
    /// implementations specialize to a single `copy_from_slice`.
    ///
    /// # Panics
    /// Panics if `buf.len() != dst.len() * SIZE`.
    fn decode_slice_into(buf: &[u8], dst: &mut [Self]) {
        assert_eq!(
            buf.len(),
            dst.len() * Self::SIZE,
            "byte length {} does not match {} records",
            buf.len(),
            dst.len()
        );
        for (chunk, d) in buf.chunks_exact(Self::SIZE).zip(dst.iter_mut()) {
            *d = Self::read_from(chunk);
        }
    }
}

/// Shared implementation of [`Record::view_slice`] for little-endian POD
/// types: length and alignment checked, then a plain pointer cast.
#[cfg(target_endian = "little")]
fn pod_view_slice<R: Record>(bytes: &[u8]) -> Option<&[R]> {
    if !bytes.len().is_multiple_of(R::SIZE)
        || bytes.as_ptr().align_offset(std::mem::align_of::<R>()) != 0
    {
        return None;
    }
    // SAFETY: length is a whole number of records, the pointer is aligned
    // for `R`, and for these POD types every byte pattern is a valid value
    // whose in-memory layout equals the file encoding.
    Some(unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<R>(), bytes.len() / R::SIZE) })
}

/// Shared implementation of [`Record::view_bytes`] for little-endian POD
/// types (a record slice is always aligned; only the layout matters).
#[cfg(target_endian = "little")]
fn pod_view_bytes<R: Record>(records: &[R]) -> &[u8] {
    // SAFETY: viewing initialized POD values as bytes is always valid, and
    // the little-endian in-memory layout is exactly the file encoding.
    unsafe { std::slice::from_raw_parts(records.as_ptr().cast::<u8>(), records.len() * R::SIZE) }
}

macro_rules! int_record {
    ($t:ty, |$s:ident| $key:expr) => {
        impl Record for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const HAS_SORT_KEY: bool = true;
            const KEY_IS_TOTAL: bool = true;

            fn sort_key(&self) -> u64 {
                let $s = *self;
                $key
            }

            fn write_to(&self, buf: &mut [u8]) {
                buf.copy_from_slice(&self.to_le_bytes());
            }

            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf.try_into().expect("record size mismatch"))
            }

            fn write_slice_to(records: &[Self], buf: &mut [u8]) {
                assert_eq!(
                    buf.len(),
                    records.len() * Self::SIZE,
                    "buffer length does not match record count"
                );
                #[cfg(target_endian = "little")]
                {
                    // SAFETY: a plain integer slice is valid to view as
                    // bytes, and its little-endian in-memory layout is
                    // exactly the file encoding.
                    let bytes = unsafe {
                        std::slice::from_raw_parts(records.as_ptr().cast::<u8>(), buf.len())
                    };
                    buf.copy_from_slice(bytes);
                }
                #[cfg(not(target_endian = "little"))]
                for (r, chunk) in records.iter().zip(buf.chunks_exact_mut(Self::SIZE)) {
                    r.write_to(chunk);
                }
            }

            fn read_slice_from(buf: &[u8], out: &mut Vec<Self>) {
                assert_eq!(
                    buf.len() % Self::SIZE,
                    0,
                    "byte length {} not a multiple of record size {}",
                    buf.len(),
                    Self::SIZE
                );
                let n = buf.len() / Self::SIZE;
                #[cfg(target_endian = "little")]
                {
                    let start = out.len();
                    out.resize(start + n, 0 as $t);
                    // SAFETY: the Vec's buffer is properly aligned for the
                    // integer type; viewing the freshly resized tail as
                    // bytes is valid, and any byte pattern is a valid
                    // integer. File encoding == little-endian layout.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(
                            out.as_mut_ptr().add(start).cast::<u8>(),
                            buf.len(),
                        )
                    };
                    dst.copy_from_slice(buf);
                }
                #[cfg(not(target_endian = "little"))]
                out.extend(buf.chunks_exact(Self::SIZE).map(Self::read_from));
            }

            #[cfg(target_endian = "little")]
            fn view_slice(bytes: &[u8]) -> Option<&[Self]> {
                pod_view_slice(bytes)
            }

            #[cfg(target_endian = "little")]
            fn view_bytes(records: &[Self]) -> Option<&[u8]> {
                Some(pod_view_bytes(records))
            }

            fn decode_slice_into(buf: &[u8], dst: &mut [Self]) {
                assert_eq!(
                    buf.len(),
                    dst.len() * Self::SIZE,
                    "byte length {} does not match {} records",
                    buf.len(),
                    dst.len()
                );
                #[cfg(target_endian = "little")]
                {
                    // SAFETY: `dst` is aligned for the integer type; its byte
                    // view is valid and matches the file encoding.
                    let out = unsafe {
                        std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<u8>(), buf.len())
                    };
                    out.copy_from_slice(buf);
                }
                #[cfg(not(target_endian = "little"))]
                for (chunk, d) in buf.chunks_exact(Self::SIZE).zip(dst.iter_mut()) {
                    *d = Self::read_from(chunk);
                }
            }
        }
    };
}

// Unsigned keys zero-extend; signed keys flip the sign bit so that the
// unsigned key order matches the signed record order.
int_record!(u32, |s| s as u64);
int_record!(u64, |s| s);
int_record!(i32, |s| (s as u32 ^ 0x8000_0000) as u64);
int_record!(i64, |s| s as u64 ^ 0x8000_0000_0000_0000);
int_record!(u16, |s| s as u64);

/// A 16-byte record with a 64-bit sort key and a 64-bit opaque payload, for
/// workloads where records are wider than their keys (e.g. database rows).
/// Ordering is by `key` first, then `payload` (total order keeps sorts
/// deterministic under duplicate keys).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(C)] // field order is the file layout (enables the bulk byte-view codec)
pub struct KeyPayload {
    /// The sort key.
    pub key: u64,
    /// Carried payload (not interpreted by the sorters).
    pub payload: u64,
}

impl KeyPayload {
    /// Convenience constructor.
    pub fn new(key: u64, payload: u64) -> Self {
        KeyPayload { key, payload }
    }
}

impl Record for KeyPayload {
    const SIZE: usize = 16;
    const HAS_SORT_KEY: bool = true;
    // Equal keys do NOT imply equal records — payloads tie-break — so
    // key-based kernels must finish equal-key groups with the full `Ord`.
    const KEY_IS_TOTAL: bool = false;

    fn sort_key(&self) -> u64 {
        self.key
    }

    fn write_to(&self, buf: &mut [u8]) {
        assert_eq!(buf.len(), Self::SIZE, "record size mismatch");
        buf[..8].copy_from_slice(&self.key.to_le_bytes());
        buf[8..].copy_from_slice(&self.payload.to_le_bytes());
    }

    fn read_from(buf: &[u8]) -> Self {
        assert_eq!(buf.len(), Self::SIZE, "record size mismatch");
        KeyPayload {
            key: u64::from_le_bytes(buf[..8].try_into().unwrap()),
            payload: u64::from_le_bytes(buf[8..].try_into().unwrap()),
        }
    }

    fn write_slice_to(records: &[Self], buf: &mut [u8]) {
        assert_eq!(
            buf.len(),
            records.len() * Self::SIZE,
            "buffer length does not match record count"
        );
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `KeyPayload` is `repr(C)` with two `u64` fields and
            // no padding, so its little-endian in-memory layout is exactly
            // the file encoding and a byte view of the slice is valid.
            let bytes =
                unsafe { std::slice::from_raw_parts(records.as_ptr().cast::<u8>(), buf.len()) };
            buf.copy_from_slice(bytes);
        }
        #[cfg(not(target_endian = "little"))]
        for (r, chunk) in records.iter().zip(buf.chunks_exact_mut(Self::SIZE)) {
            r.write_to(chunk);
        }
    }

    fn read_slice_from(buf: &[u8], out: &mut Vec<Self>) {
        assert_eq!(
            buf.len() % Self::SIZE,
            0,
            "byte length {} not a multiple of record size {}",
            buf.len(),
            Self::SIZE
        );
        let n = buf.len() / Self::SIZE;
        #[cfg(target_endian = "little")]
        {
            let start = out.len();
            out.resize(start + n, KeyPayload::new(0, 0));
            // SAFETY: the Vec's buffer is aligned for `KeyPayload`
            // (`repr(C)`, padding-free, any byte pattern valid); the byte
            // view of the freshly resized tail matches the file encoding.
            let dst = unsafe {
                std::slice::from_raw_parts_mut(out.as_mut_ptr().add(start).cast::<u8>(), buf.len())
            };
            dst.copy_from_slice(buf);
        }
        #[cfg(not(target_endian = "little"))]
        out.extend(buf.chunks_exact(Self::SIZE).map(Self::read_from));
    }

    #[cfg(target_endian = "little")]
    fn view_slice(bytes: &[u8]) -> Option<&[Self]> {
        pod_view_slice(bytes)
    }

    #[cfg(target_endian = "little")]
    fn view_bytes(records: &[Self]) -> Option<&[u8]> {
        Some(pod_view_bytes(records))
    }

    fn decode_slice_into(buf: &[u8], dst: &mut [Self]) {
        assert_eq!(
            buf.len(),
            dst.len() * Self::SIZE,
            "byte length {} does not match {} records",
            buf.len(),
            dst.len()
        );
        #[cfg(target_endian = "little")]
        {
            // SAFETY: `dst` is aligned for `KeyPayload` (`repr(C)`,
            // padding-free, any byte pattern valid); its byte view matches
            // the file encoding.
            let out =
                unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast::<u8>(), buf.len()) };
            out.copy_from_slice(buf);
        }
        #[cfg(not(target_endian = "little"))]
        for (chunk, d) in buf.chunks_exact(Self::SIZE).zip(dst.iter_mut()) {
            *d = Self::read_from(chunk);
        }
    }
}

/// Encodes a slice of records into a packed byte vector (one bulk pass).
pub fn encode_all<R: Record>(records: &[R]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_all_into(records, &mut out);
    out
}

/// Encodes into a caller-owned buffer: clears `out`, then appends the
/// packed encoding, reusing whatever capacity `out` already holds. Message
/// loops that encode thousands of small chunks (`msg_records = 8` is the
/// paper's pathological packet size) call this with a scratch buffer so
/// each encode reuses one buffer instead of hitting the allocator per
/// message.
pub fn encode_all_into<R: Record>(records: &[R], out: &mut Vec<u8>) {
    out.clear();
    out.resize(records.len() * R::SIZE, 0);
    R::write_slice_to(records, out);
}

/// Decodes a packed byte slice into records (one bulk pass).
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `R::SIZE`.
pub fn decode_all<R: Record>(bytes: &[u8]) -> Vec<R> {
    let mut out = Vec::with_capacity(bytes.len() / R::SIZE);
    R::read_slice_from(bytes, &mut out);
    out
}

/// Decodes into a caller-owned buffer: clears `out`, then appends the
/// decoded records, reusing capacity. The receive-side counterpart of
/// [`encode_all_into`] for per-message scratch reuse.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `R::SIZE`.
pub fn decode_all_into<R: Record>(bytes: &[u8], out: &mut Vec<R>) {
    out.clear();
    R::read_slice_from(bytes, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Record>(x: R) {
        let mut buf = vec![0u8; R::SIZE];
        x.write_to(&mut buf);
        assert_eq!(R::read_from(&buf), x);
    }

    #[test]
    fn u32_roundtrip() {
        for x in [0u32, 1, 0xDEAD_BEEF, u32::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn i32_roundtrip_preserves_sign() {
        for x in [i32::MIN, -1, 0, 1, i32::MAX] {
            roundtrip(x);
        }
    }

    #[test]
    fn u64_i64_u16_roundtrip() {
        roundtrip(u64::MAX - 3);
        roundtrip(i64::MIN + 5);
        roundtrip(0xBEEFu16);
    }

    #[test]
    fn keypayload_roundtrip_and_order() {
        roundtrip(KeyPayload::new(42, 0xFFFF_FFFF_FFFF_FFFF));
        let a = KeyPayload::new(1, 100);
        let b = KeyPayload::new(2, 0);
        let c = KeyPayload::new(2, 1);
        assert!(a < b && b < c);
        assert_eq!(KeyPayload::SIZE, 16);
    }

    #[test]
    fn encode_decode_all() {
        let v: Vec<u32> = (0..100).map(|i| i * 7).collect();
        let bytes = encode_all(&v);
        assert_eq!(bytes.len(), 400);
        assert_eq!(decode_all::<u32>(&bytes), v);
    }

    #[test]
    fn encode_decode_into_reuse_capacity() {
        let v: Vec<u32> = (0..50).collect();
        let mut bytes = Vec::with_capacity(1024);
        encode_all_into(&v, &mut bytes);
        let cap = bytes.capacity();
        assert_eq!(bytes, encode_all(&v));
        // A second (smaller) encode reuses the same allocation.
        encode_all_into(&v[..10], &mut bytes);
        assert_eq!(bytes.capacity(), cap);
        assert_eq!(bytes, encode_all(&v[..10]));
        // Decode side: scratch is cleared, not appended to.
        let mut out: Vec<u32> = vec![999; 64];
        let out_cap = out.capacity();
        decode_all_into(&bytes, &mut out);
        assert_eq!(out, &v[..10]);
        assert_eq!(out.capacity(), out_cap);
    }

    #[test]
    fn encode_empty() {
        let v: Vec<u64> = vec![];
        assert!(encode_all(&v).is_empty());
        assert!(decode_all::<u64>(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_misaligned_panics() {
        let _ = decode_all::<u32>(&[1, 2, 3]);
    }

    #[test]
    fn little_endian_layout() {
        let mut buf = [0u8; 4];
        0x0102_0304u32.write_to(&mut buf);
        assert_eq!(buf, [4, 3, 2, 1]);
    }

    fn key_order_matches<R: Record>(mut xs: Vec<R>) {
        assert!(R::HAS_SORT_KEY);
        xs.sort_unstable();
        for w in xs.windows(2) {
            assert!(
                w[0].sort_key() <= w[1].sort_key(),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
            if w[0].sort_key() < w[1].sort_key() {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn sort_keys_preserve_order() {
        key_order_matches(vec![0u32, 1, 7, u32::MAX, 0x8000_0000]);
        key_order_matches(vec![0u64, u64::MAX, 42, 1 << 63]);
        key_order_matches(vec![i32::MIN, -1, 0, 1, i32::MAX]);
        key_order_matches(vec![i64::MIN, -5, 0, 3, i64::MAX]);
        key_order_matches(vec![0u16, 9, u16::MAX]);
        key_order_matches(vec![
            KeyPayload::new(0, 9),
            KeyPayload::new(1, 0),
            KeyPayload::new(1, 1),
            KeyPayload::new(u64::MAX, 0),
        ]);
    }

    #[test]
    fn keypayload_key_not_total() {
        const { assert!(KeyPayload::HAS_SORT_KEY) };
        const { assert!(!KeyPayload::KEY_IS_TOTAL) };
        // The plain integer records all set KEY_IS_TOTAL (checked at compile
        // time where the constants are defined via `int_record!`).
    }

    #[test]
    fn try_read_from_checks_length() {
        assert_eq!(u32::try_read_from(&[1, 0, 0, 0]), Some(1u32));
        assert_eq!(u32::try_read_from(&[1, 0, 0]), None);
        assert_eq!(u32::try_read_from(&[]), None);
        assert_eq!(KeyPayload::try_read_from(&[0u8; 15]), None);
    }

    /// The bulk codec must produce exactly the bytes of the per-record loop
    /// (the POD byte-view specialization is only an optimization).
    fn bulk_matches_loop<R: Record>(xs: &[R]) {
        let mut bulk = vec![0u8; xs.len() * R::SIZE];
        R::write_slice_to(xs, &mut bulk);
        let mut looped = vec![0u8; xs.len() * R::SIZE];
        for (r, chunk) in xs.iter().zip(looped.chunks_exact_mut(R::SIZE)) {
            r.write_to(chunk);
        }
        assert_eq!(bulk, looped);
        let mut out = vec![xs[0]]; // non-empty: append semantics
        R::read_slice_from(&bulk, &mut out);
        assert_eq!(&out[1..], xs);
    }

    #[test]
    fn bulk_codec_matches_per_record_loop() {
        bulk_matches_loop(&[0x0102_0304u32, 7, u32::MAX, 0]);
        bulk_matches_loop(&[u64::MAX, 1, 1 << 40]);
        bulk_matches_loop(&[i32::MIN, -2, 5]);
        bulk_matches_loop(&[i64::MIN, 0, i64::MAX]);
        bulk_matches_loop(&[1u16, 0xBEEF]);
        bulk_matches_loop(&[KeyPayload::new(3, 4), KeyPayload::new(u64::MAX, 0)]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bulk_read_misaligned_panics() {
        let mut out = Vec::new();
        u32::read_slice_from(&[1, 2, 3], &mut out);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn bulk_write_wrong_size_panics() {
        let mut buf = [0u8; 7];
        u32::write_slice_to(&[1, 2], &mut buf);
    }
}
