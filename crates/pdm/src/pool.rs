//! A shared pool of block-sized byte buffers.
//!
//! The merge loops of the external sorters open and close many block readers
//! and writers per phase; without recycling, every one of them allocates (and
//! later frees) a block-sized `Vec`. A [`BufferPool`] is a cheaply cloneable
//! handle to a free list: readers/writers take a buffer on open and return it
//! on drop, so steady-state merging performs no block-buffer allocations at
//! all. The pool is also what the pipelined I/O workers
//! ([`crate::pipeline`]) recycle their in-flight blocks through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A thread-safe free list of byte buffers. Clones share the same pool.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

#[derive(Debug)]
struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    max_idle: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(Self::DEFAULT_MAX_IDLE)
    }
}

impl BufferPool {
    /// Default cap on idle buffers kept for reuse; enough for a high-order
    /// merge (readers + writer + pipeline queues) without hoarding memory.
    pub const DEFAULT_MAX_IDLE: usize = 64;

    /// Creates a pool that keeps at most `max_idle` buffers on its free list
    /// (returns beyond the cap are simply freed).
    pub fn new(max_idle: usize) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                max_idle,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
            }),
        }
    }

    /// Takes a cleared buffer with at least `capacity` bytes of capacity,
    /// reusing a pooled one when available.
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        let reused = self.inner.free.lock().unwrap().pop();
        match reused {
            Some(mut buf) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                if buf.capacity() < capacity {
                    buf.reserve(capacity); // len is 0: guarantees `capacity`
                }
                buf
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        }
    }

    /// Returns a buffer to the pool (dropped if the free list is full or the
    /// buffer never grew a real allocation).
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.inner.free.lock().unwrap();
        if free.len() < self.inner.max_idle {
            free.push(buf);
        }
    }

    /// Buffers currently idle on the free list.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().unwrap().len()
    }

    /// `take` calls served from the free list.
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// `take` calls that had to allocate.
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_buffers() {
        let pool = BufferPool::new(8);
        let mut a = pool.take(64);
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take(16);
        assert!(b.is_empty(), "pooled buffers come back cleared");
        assert!(b.capacity() >= cap.min(16));
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn grows_small_buffers_on_take() {
        let pool = BufferPool::new(8);
        pool.put(vec![0u8; 4]);
        let b = pool.take(1024);
        assert!(b.capacity() >= 1024);
    }

    #[test]
    fn respects_max_idle() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(vec![0u8; 8]);
        }
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn zero_capacity_buffers_not_pooled() {
        let pool = BufferPool::new(8);
        pool.put(Vec::new());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn clones_share_the_free_list() {
        let pool = BufferPool::new(8);
        let clone = pool.clone();
        pool.put(vec![0u8; 8]);
        assert_eq!(clone.idle(), 1);
        let _ = clone.take(8);
        assert_eq!(pool.idle(), 0);
    }
}
