//! Typed, block-buffered file access.
//!
//! [`BlockWriter`] and [`BlockReader`] move records through a one-block
//! buffer: every buffer fill/flush is exactly one metered block I/O, so the
//! counters in [`crate::stats::IoStats`] reproduce the PDM cost measure. The
//! reader also supports metered *random* access ([`BlockReader::read_at`]),
//! which is what the pivot-sampling step of the paper's algorithm uses.
//!
//! # Codecs
//!
//! For POD records whose in-memory layout equals the file encoding
//! (little-endian integers, [`crate::record::KeyPayload`]), the
//! [`Codec::ZeroCopy`] codec — the default — consumes and produces blocks
//! **in place**: reads decode through a borrowed `&[R]` view of the I/O
//! buffer ([`BlockReader::next_block_view`]), and whole-block writes append
//! straight from the caller's record slice without staging. The
//! [`Codec::Copying`] codec keeps the original per-record encode/decode
//! round-trip as a reference. Both codecs touch identical byte ranges,
//! flush at identical block boundaries and meter identical
//! [`crate::stats::IoStats`] — the differential suites hold them to that.

use crate::disk::{Disk, RawFile};
use crate::error::{PdmError, PdmResult};
use crate::pool::BufferPool;
use crate::record::Record;

/// How typed readers/writers move bytes between blocks and records (a
/// [`Disk`] knob, see [`Disk::with_codec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Per-record (or bulk-memcpy) encode/decode through a staging buffer —
    /// the reference path, valid for every record type.
    Copying,
    /// Borrowed `&[R]` block views over the I/O buffer where the record
    /// layout allows it ([`Record::view_slice`]); falls back to copying per
    /// block otherwise. Observationally identical to [`Codec::Copying`].
    #[default]
    ZeroCopy,
}

impl Codec {
    /// Parses a codec name (`copy` or `zerocopy`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "copy" => Some(Codec::Copying),
            "zerocopy" => Some(Codec::ZeroCopy),
            _ => None,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Codec::Copying => "copy",
            Codec::ZeroCopy => "zerocopy",
        }
    }
}

/// Appends records to a disk file, one block at a time.
#[derive(Debug)]
pub struct BlockWriter<R: Record> {
    raw: RawFile,
    disk: Disk,
    name: String,
    buf: Vec<u8>,
    pool: Option<BufferPool>,
    records_per_block: usize,
    written: u64,
    finished: bool,
    codec: Codec,
    /// Marks this writer as an open request stream for queue diagnostics.
    _stream: crate::stats::StreamGuard,
    _marker: std::marker::PhantomData<R>,
}

/// Streams records from a disk file, one block at a time, with random access.
#[derive(Debug)]
pub struct BlockReader<R: Record> {
    raw: RawFile,
    disk: Disk,
    name: String,
    len: u64,
    pos: u64,
    /// Currently buffered block: record index range [buf_start, buf_end).
    buf: Vec<u8>,
    pool: Option<BufferPool>,
    buf_start: u64,
    buf_end: u64,
    records_per_block: usize,
    codec: Codec,
    /// Marks this reader as an open request stream for queue diagnostics.
    _stream: crate::stats::StreamGuard,
    _marker: std::marker::PhantomData<R>,
}

/// Records per PDM block for record type `R` on this disk.
///
/// Fails with [`PdmError::InvalidConfig`] if a block cannot hold even one
/// record — no block-granular I/O plan is possible then.
pub(crate) fn records_per_block<R: Record>(disk: &Disk) -> PdmResult<usize> {
    let rpb = disk.block_bytes() / R::SIZE;
    if rpb == 0 {
        return Err(PdmError::InvalidConfig(format!(
            "block size {} smaller than record size {}",
            disk.block_bytes(),
            R::SIZE
        )));
    }
    Ok(rpb)
}

impl Disk {
    /// Creates a file and returns a typed block writer for it.
    pub fn create_writer<R: Record>(&self, name: &str) -> PdmResult<BlockWriter<R>> {
        self.create_writer_pooled(name, None)
    }

    /// Like [`Disk::create_writer`], but the block buffer is taken from (and
    /// on drop returned to) `pool`.
    pub fn create_writer_pooled<R: Record>(
        &self,
        name: &str,
        pool: Option<BufferPool>,
    ) -> PdmResult<BlockWriter<R>> {
        let records_per_block = records_per_block::<R>(self)?;
        let raw = self.create_raw(name)?;
        let buf = match &pool {
            Some(p) => p.take(self.block_bytes()),
            None => Vec::with_capacity(self.block_bytes()),
        };
        Ok(BlockWriter {
            raw,
            disk: self.clone(),
            name: name.to_string(),
            buf,
            pool,
            records_per_block,
            written: 0,
            finished: false,
            codec: self.codec(),
            _stream: self.stats().stream_opened(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Opens a file and returns a typed block reader positioned at record 0.
    ///
    /// Fails with [`PdmError::Corrupt`] if the byte length is not a whole
    /// number of records.
    pub fn open_reader<R: Record>(&self, name: &str) -> PdmResult<BlockReader<R>> {
        self.open_reader_pooled(name, None)
    }

    /// Like [`Disk::open_reader`], but the block buffer is taken from (and
    /// on drop returned to) `pool`.
    pub fn open_reader_pooled<R: Record>(
        &self,
        name: &str,
        pool: Option<BufferPool>,
    ) -> PdmResult<BlockReader<R>> {
        let records_per_block = records_per_block::<R>(self)?;
        let (raw, bytes) = self.open_raw(name)?;
        if bytes % R::SIZE as u64 != 0 {
            return Err(PdmError::Corrupt {
                name: name.to_string(),
                bytes,
                record_size: R::SIZE,
            });
        }
        let buf = match &pool {
            Some(p) => p.take(self.block_bytes()),
            None => Vec::new(),
        };
        Ok(BlockReader {
            raw,
            disk: self.clone(),
            name: name.to_string(),
            len: bytes / R::SIZE as u64,
            pos: 0,
            buf,
            pool,
            buf_start: 0,
            buf_end: 0,
            records_per_block,
            codec: self.codec(),
            _stream: self.stats().stream_opened(),
            _marker: std::marker::PhantomData,
        })
    }

    /// Number of records in a file (type-directed).
    pub fn len_records<R: Record>(&self, name: &str) -> PdmResult<u64> {
        let bytes = self.len_bytes(name)?;
        if bytes % R::SIZE as u64 != 0 {
            return Err(PdmError::Corrupt {
                name: name.to_string(),
                bytes,
                record_size: R::SIZE,
            });
        }
        Ok(bytes / R::SIZE as u64)
    }

    /// Convenience: writes an entire slice as a new file.
    pub fn write_file<R: Record>(&self, name: &str, records: &[R]) -> PdmResult<()> {
        let mut w = self.create_writer::<R>(name)?;
        w.push_all(records)?;
        w.finish()?;
        Ok(())
    }

    /// Convenience: reads an entire file into memory (metered, bulk-decoded).
    pub fn read_file<R: Record>(&self, name: &str) -> PdmResult<Vec<R>> {
        let mut r = self.open_reader::<R>(name)?;
        let n = r.len() as usize;
        let mut out = Vec::with_capacity(n);
        r.read_into(&mut out, n)?;
        Ok(out)
    }
}

impl<R: Record> BlockWriter<R> {
    /// Appends one record.
    pub fn push(&mut self, r: R) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let old = self.buf.len();
        self.buf.resize(old + R::SIZE, 0);
        r.write_to(&mut self.buf[old..]);
        self.written += 1;
        if self.buf.len() >= self.records_per_block * R::SIZE {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Appends every record in the slice, bulk-encoding one block segment
    /// at a time ([`Record::write_slice_to`]) instead of `rs.len()` virtual
    /// calls. Flush boundaries — and therefore metering — are identical to
    /// a [`BlockWriter::push`] loop.
    ///
    /// Under [`Codec::ZeroCopy`], whole blocks that start at a block
    /// boundary skip the staging buffer entirely: the block is appended
    /// straight from the caller's slice through its borrowed byte view
    /// ([`Record::view_bytes`]) — same bytes, same flush boundaries, same
    /// metering, one memcpy less.
    pub fn push_all(&mut self, rs: &[R]) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let cap = self.records_per_block * R::SIZE;
        let rpb = self.records_per_block;
        let mut rest = rs;
        while !rest.is_empty() {
            if self.codec == Codec::ZeroCopy && self.buf.is_empty() && rest.len() >= rpb {
                if let Some(bytes) = R::view_bytes(&rest[..rpb]) {
                    self.raw.append(bytes)?;
                    self.disk.stats().on_write(bytes.len() as u64);
                    self.written += rpb as u64;
                    rest = &rest[rpb..];
                    continue;
                }
            }
            let room = (cap - self.buf.len()) / R::SIZE;
            let take = rest.len().min(room);
            let old = self.buf.len();
            self.buf.resize(old + take * R::SIZE, 0);
            R::write_slice_to(&rest[..take], &mut self.buf[old..]);
            self.written += take as u64;
            rest = &rest[take..];
            if self.buf.len() >= cap {
                self.flush_block()?;
            }
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes the partial last block and closes the file; returns the total
    /// record count. Must be called — dropping an unfinished writer loses
    /// the buffered tail (mirrors real buffered I/O) and debug-asserts.
    pub fn finish(mut self) -> PdmResult<u64> {
        if !self.buf.is_empty() {
            self.flush_block()?;
        }
        self.raw.sync()?;
        self.finished = true;
        Ok(self.written)
    }

    /// File name this writer targets.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn flush_block(&mut self) -> PdmResult<()> {
        self.raw.append(&self.buf)?;
        self.disk.stats().on_write(self.buf.len() as u64);
        self.buf.clear();
        Ok(())
    }
}

impl<R: Record> Drop for BlockWriter<R> {
    fn drop(&mut self) {
        // Dropping mid-stream during error unwinding is legitimate (the
        // file is garbage anyway); dropping with buffered records on the
        // happy path is a forgotten finish() — catch it in debug builds.
        debug_assert!(
            self.finished || self.buf.is_empty() || std::thread::panicking(),
            "BlockWriter for {:?} dropped with {} unflushed bytes — call finish()",
            self.name,
            self.buf.len()
        );
        if let Some(pool) = &self.pool {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl<R: Record> Drop for BlockReader<R> {
    fn drop(&mut self) {
        if let Some(pool) = &self.pool {
            pool.put(std::mem::take(&mut self.buf));
        }
    }
}

impl<R: Record> BlockReader<R> {
    /// Total number of records in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current streaming position (record index).
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Records left to stream.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// File name this reader reads.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the next record, or `None` at end of file. Buffer refills are
    /// metered as sequential block reads.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        if self.pos < self.buf_start || self.pos >= self.buf_end {
            self.fill_block(self.pos, false)?;
        }
        let off = ((self.pos - self.buf_start) as usize) * R::SIZE;
        let rec = self.decode_at(off)?;
        self.pos += 1;
        Ok(Some(rec))
    }

    /// Streams up to `max` records into `out`, bulk-decoding whole buffered
    /// block segments ([`Record::read_slice_from`]) instead of one virtual
    /// call per record. Metering is identical to a
    /// [`BlockReader::next_record`] loop. Returns the record count appended.
    pub fn read_into(&mut self, out: &mut Vec<R>, max: usize) -> PdmResult<usize> {
        let mut got = 0usize;
        while got < max && self.pos < self.len {
            if self.pos < self.buf_start || self.pos >= self.buf_end {
                self.fill_block(self.pos, false)?;
            }
            let take = ((self.buf_end - self.pos) as usize).min(max - got);
            let off = ((self.pos - self.buf_start) as usize) * R::SIZE;
            let slice = self
                .buf
                .get(off..off + take * R::SIZE)
                .ok_or_else(|| self.short_buffer())?;
            R::read_slice_from(slice, out);
            self.pos += take as u64;
            got += take;
        }
        Ok(got)
    }

    /// Decodes the record at byte offset `off` of the buffered block,
    /// surfacing a short buffer (truncated tail) as a typed error instead
    /// of an index/`read_from` panic. Under [`Codec::ZeroCopy`] the record
    /// is copied out of a borrowed `&[R]` view of the buffer (no decode).
    fn decode_at(&self, off: usize) -> PdmResult<R> {
        if self.codec == Codec::ZeroCopy {
            if let Some(rec) = R::view_slice(&self.buf).and_then(|v| v.get(off / R::SIZE)) {
                return Ok(*rec);
            }
        }
        self.buf
            .get(off..off + R::SIZE)
            .and_then(R::try_read_from)
            .ok_or_else(|| self.short_buffer())
    }

    /// Borrows the unconsumed remainder of the current block as a record
    /// slice, refilling (metered, sequential) first when the block is
    /// exhausted — the zero-copy scan path. `Ok(None)` means end of file.
    /// An **empty** view means the buffer cannot be viewed in place (no
    /// POD layout, or misaligned); stream that block through
    /// [`BlockReader::next_record`] instead. Use [`BlockReader::consume`]
    /// to advance past records taken from the view; the borrow ends there,
    /// so the view never outlives its block.
    pub fn next_block_view(&mut self) -> PdmResult<Option<&[R]>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        if self.pos < self.buf_start || self.pos >= self.buf_end {
            self.fill_block(self.pos, false)?;
        }
        let off = ((self.pos - self.buf_start) as usize) * R::SIZE;
        match R::view_slice(&self.buf[off..]) {
            Some(view) => Ok(Some(view)),
            None => Ok(Some(&[])),
        }
    }

    /// Advances the streaming cursor past `n` records previously obtained
    /// from [`BlockReader::next_block_view`].
    pub fn consume(&mut self, n: usize) {
        debug_assert!(self.pos + n as u64 <= self.buf_end);
        self.pos += n as u64;
    }

    fn short_buffer(&self) -> PdmError {
        PdmError::Corrupt {
            name: self.name.clone(),
            bytes: self.buf_start * R::SIZE as u64 + self.buf.len() as u64,
            record_size: R::SIZE,
        }
    }

    /// Repositions the streaming cursor (no I/O until the next read).
    ///
    /// # Panics
    /// Panics if `idx > len` (positioning exactly at EOF is allowed).
    pub fn seek(&mut self, idx: u64) {
        assert!(idx <= self.len, "seek {idx} past end {}", self.len);
        self.pos = idx;
    }

    /// Random access to the record at `idx`. Metered as a *random* block
    /// read unless `idx` falls inside the currently buffered block.
    pub fn read_at(&mut self, idx: u64) -> PdmResult<R> {
        if idx >= self.len {
            return Err(PdmError::OutOfRange {
                name: self.name.clone(),
                index: idx,
                len: self.len,
            });
        }
        if idx < self.buf_start || idx >= self.buf_end {
            self.fill_block(idx, true)?;
        }
        let off = ((idx - self.buf_start) as usize) * R::SIZE;
        self.decode_at(off)
    }

    /// Loads the block containing record `idx` into the buffer.
    fn fill_block(&mut self, idx: u64, random: bool) -> PdmResult<()> {
        let rpb = self.records_per_block as u64;
        let block_no = idx / rpb;
        let start = block_no * rpb;
        let end = (start + rpb).min(self.len);
        let byte_off = start * R::SIZE as u64;
        let want = ((end - start) as usize) * R::SIZE;
        self.buf.resize(want, 0);
        let got = self.raw.read_at(byte_off, &mut self.buf)?;
        // Meter whatever actually transferred *before* bailing on a short
        // read: the seek and the partial transfer happened either way, and
        // callers audit `random_reads` even on the error path.
        if random {
            self.disk.stats().on_random_read(got as u64);
        } else {
            self.disk.stats().on_read(got as u64);
        }
        if got != want {
            // The file shrank under us (torn write / concurrent truncate).
            return Err(PdmError::Corrupt {
                name: self.name.clone(),
                bytes: byte_off + got as u64,
                record_size: R::SIZE,
            });
        }
        self.buf_start = start;
        self.buf_end = end;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use crate::record::KeyPayload;
    use crate::tempdir::ScratchDir;

    fn disks() -> Vec<(Disk, Option<ScratchDir>)> {
        let scratch = ScratchDir::new("pdm-file-test").unwrap();
        let fd = Disk::on_files(scratch.path(), 16); // 4 u32 records per block
        vec![(Disk::in_memory(16), None), (fd, Some(scratch))]
    }

    #[test]
    fn write_then_stream_roundtrip() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..23).map(|i| i * 3).collect();
            disk.write_file("f", &data).unwrap();
            assert_eq!(disk.len_records::<u32>("f").unwrap(), 23);
            assert_eq!(disk.read_file::<u32>("f").unwrap(), data);
        }
    }

    #[test]
    fn empty_file() {
        for (disk, _g) in disks() {
            disk.write_file::<u32>("e", &[]).unwrap();
            let mut r = disk.open_reader::<u32>("e").unwrap();
            assert!(r.is_empty());
            assert_eq!(r.next_record().unwrap(), None);
        }
    }

    #[test]
    fn io_is_metered_in_blocks() {
        let disk = Disk::in_memory(16); // 4 u32 per block
        let data: Vec<u32> = (0..10).collect(); // 2 full + 1 partial block
        disk.write_file("m", &data).unwrap();
        let snap = disk.stats().snapshot();
        assert_eq!(snap.blocks_written, 3);
        assert_eq!(snap.bytes_written, 40);
        disk.read_file::<u32>("m").unwrap();
        let snap = disk.stats().snapshot();
        assert_eq!(snap.blocks_read, 3);
        assert_eq!(snap.bytes_read, 40);
    }

    #[test]
    fn read_at_random_access() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..100).map(|i| i * 7).collect();
            disk.write_file("r", &data).unwrap();
            let mut r = disk.open_reader::<u32>("r").unwrap();
            assert_eq!(r.read_at(0).unwrap(), 0);
            assert_eq!(r.read_at(99).unwrap(), 99 * 7);
            assert_eq!(r.read_at(50).unwrap(), 350);
            assert!(matches!(r.read_at(100), Err(PdmError::OutOfRange { .. })));
        }
    }

    #[test]
    fn read_at_within_buffered_block_is_free() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..8).collect();
        disk.write_file("c", &data).unwrap();
        let mut r = disk.open_reader::<u32>("c").unwrap();
        r.read_at(0).unwrap();
        let before = disk.stats().snapshot();
        r.read_at(1).unwrap();
        r.read_at(3).unwrap();
        assert_eq!(disk.stats().snapshot().random_reads, before.random_reads);
        r.read_at(4).unwrap(); // next block: one more random read
        assert_eq!(
            disk.stats().snapshot().random_reads,
            before.random_reads + 1
        );
    }

    #[test]
    fn seek_then_stream() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..50).collect();
            disk.write_file("s", &data).unwrap();
            let mut r = disk.open_reader::<u32>("s").unwrap();
            r.seek(45);
            let mut tail = Vec::new();
            while let Some(x) = r.next_record().unwrap() {
                tail.push(x);
            }
            assert_eq!(tail, vec![45, 46, 47, 48, 49]);
            r.seek(50); // exactly EOF is allowed
            assert_eq!(r.next_record().unwrap(), None);
        }
    }

    #[test]
    fn corrupt_length_detected_on_open() {
        for (disk, _g) in disks() {
            disk.write_file::<u32>("x", &[1, 2, 3]).unwrap();
            disk.truncate("x", 10).unwrap(); // 10 bytes: not a multiple of 4
            assert!(matches!(
                disk.open_reader::<u32>("x"),
                Err(PdmError::Corrupt { .. })
            ));
            assert!(matches!(
                disk.len_records::<u32>("x"),
                Err(PdmError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn truncation_under_reader_detected() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..16).collect();
            disk.write_file("t", &data).unwrap();
            let mut r = disk.open_reader::<u32>("t").unwrap();
            assert_eq!(r.next_record().unwrap(), Some(0));
            disk.truncate("t", 16).unwrap(); // drop the tail blocks
            r.seek(8);
            assert!(matches!(r.next_record(), Err(PdmError::Corrupt { .. })));
        }
    }

    #[test]
    fn short_read_is_metered_before_erroring() {
        // Regression: a read that surfaces `Corrupt` still did a seek and a
        // (partial) transfer — the counters must reflect it.
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..16).collect();
            disk.write_file("sr", &data).unwrap();
            let mut r = disk.open_reader::<u32>("sr").unwrap();
            // Leave 1 of block 1's 4 records: read_at(4) gets 4 of 16 bytes.
            disk.truncate("sr", 20).unwrap();
            let before = disk.stats().snapshot();
            assert!(matches!(r.read_at(4), Err(PdmError::Corrupt { .. })));
            let after = disk.stats().snapshot();
            assert_eq!(
                after.random_reads,
                before.random_reads + 1,
                "random read must count even on the Corrupt path"
            );
            assert_eq!(after.blocks_read, before.blocks_read + 1);
            assert_eq!(after.bytes_read, before.bytes_read + 4);
            assert_eq!(
                after.seek_bytes,
                before.seek_bytes + 4,
                "partial transfer must show up in seek_bytes too"
            );

            // Same on the streaming (sequential) path.
            let before = after;
            r.seek(4);
            assert!(matches!(r.next_record(), Err(PdmError::Corrupt { .. })));
            let after = disk.stats().snapshot();
            assert_eq!(after.blocks_read, before.blocks_read + 1);
            assert_eq!(after.random_reads, before.random_reads);
            assert_eq!(after.bytes_read, before.bytes_read + 4);
        }
    }

    #[test]
    fn probe_read_of_eof_partial_block_meters_actual_bytes() {
        // A splitter probe landing in the legitimate partial block at EOF
        // meters the bytes that actually transferred — same rule the short
        // read above documents for streams — and books them as seek bytes.
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..10).collect(); // last block holds 2 records
            disk.write_file("pp", &data).unwrap();
            let mut r = disk.open_reader::<u32>("pp").unwrap();
            let before = disk.stats().snapshot();
            assert_eq!(r.read_at(9).unwrap(), 9);
            let after = disk.stats().snapshot();
            assert_eq!(after.random_reads, before.random_reads + 1);
            assert_eq!(after.bytes_read, before.bytes_read + 8);
            assert_eq!(after.seek_bytes, before.seek_bytes + 8);
            // A sequential refill elsewhere leaves seek_bytes alone.
            r.seek(0);
            assert_eq!(r.next_record().unwrap(), Some(0));
            assert_eq!(disk.stats().snapshot().seek_bytes, after.seek_bytes);
        }
    }

    #[test]
    fn read_into_bulk_matches_streaming() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..23).map(|i| i * 3).collect();
            disk.write_file("b", &data).unwrap();
            let before = disk.stats().snapshot();
            let mut r = disk.open_reader::<u32>("b").unwrap();
            let mut out = Vec::new();
            // Odd chunk sizes cross block boundaries mid-chunk.
            assert_eq!(r.read_into(&mut out, 5).unwrap(), 5);
            assert_eq!(r.read_into(&mut out, 7).unwrap(), 7);
            assert_eq!(r.read_into(&mut out, 100).unwrap(), 11);
            assert_eq!(r.read_into(&mut out, 100).unwrap(), 0);
            assert_eq!(out, data);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_read, 6, "one metered read per block");
        }
    }

    #[test]
    fn short_buffer_is_typed_error_not_panic() {
        // A file whose byte length is a whole number of records but whose
        // tail block is torn mid-record: the decode must surface
        // `PdmError::Corrupt`, never an index or `read_from` panic.
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..8).collect();
            disk.write_file("torn", &data).unwrap();
            let mut r = disk.open_reader::<u32>("torn").unwrap();
            assert_eq!(r.next_record().unwrap(), Some(0));
            disk.truncate("torn", 18).unwrap(); // mid-record within block 2
            r.seek(4);
            assert!(matches!(r.next_record(), Err(PdmError::Corrupt { .. })));
            let mut out = Vec::new();
            r.seek(4);
            assert!(matches!(
                r.read_into(&mut out, 4),
                Err(PdmError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn keypayload_files() {
        for (disk, _g) in disks() {
            let data: Vec<KeyPayload> = (0..9)
                .map(|i| KeyPayload::new(i as u64, i as u64 * 10))
                .collect();
            disk.write_file("kp", &data).unwrap();
            assert_eq!(disk.read_file::<KeyPayload>("kp").unwrap(), data);
        }
    }

    #[test]
    fn writer_counts_records() {
        let disk = Disk::in_memory(64);
        let mut w = disk.create_writer::<u32>("w").unwrap();
        w.push(1).unwrap();
        w.push_all(&[2, 3, 4]).unwrap();
        assert_eq!(w.written(), 4);
        assert_eq!(w.finish().unwrap(), 4);
    }

    #[test]
    fn tiny_blocks_rejected() {
        let disk = Disk::in_memory(8);
        match disk.create_writer::<KeyPayload>("oops") {
            Err(PdmError::InvalidConfig(msg)) => {
                assert!(msg.contains("smaller than record size"), "{msg}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        match disk.open_reader::<KeyPayload>("oops") {
            Err(PdmError::InvalidConfig(_)) => {}
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        // The failed create must not leave a half-made writer behind: the
        // config is checked before the file is created.
        assert!(!disk.exists("oops"));
    }

    #[test]
    fn codecs_are_observationally_identical() {
        // Same data, same operations, one disk per codec: identical bytes
        // on disk, identical IoStats, identical decoded records.
        let data: Vec<u32> = (0..103u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let kp: Vec<KeyPayload> = data
            .iter()
            .map(|&x| KeyPayload::new(x as u64 % 7, x as u64))
            .collect();
        let copy = Disk::in_memory(16).with_codec(Codec::Copying);
        let zero = Disk::in_memory(16).with_codec(Codec::ZeroCopy);
        for disk in [&copy, &zero] {
            disk.write_file("u", &data).unwrap();
            disk.write_file("k", &kp).unwrap();
            assert_eq!(disk.read_file::<u32>("u").unwrap(), data);
            assert_eq!(disk.read_file::<KeyPayload>("k").unwrap(), kp);
            let mut r = disk.open_reader::<u32>("u").unwrap();
            assert_eq!(r.read_at(97).unwrap(), 97u32.wrapping_mul(2654435761));
            r.seek(50);
            assert_eq!(
                r.next_record().unwrap(),
                Some(50u32.wrapping_mul(2654435761))
            );
        }
        assert_eq!(copy.stats().snapshot(), zero.stats().snapshot());
    }

    #[test]
    fn zero_copy_direct_writes_meter_like_staged() {
        // A bulk push_all under ZeroCopy appends full blocks without
        // staging; the flush boundaries and counters must not move.
        let data: Vec<u32> = (0..23).collect();
        let copy = Disk::in_memory(16).with_codec(Codec::Copying);
        let zero = Disk::in_memory(16).with_codec(Codec::ZeroCopy);
        for disk in [&copy, &zero] {
            let mut w = disk.create_writer::<u32>("d").unwrap();
            w.push(100).unwrap(); // unaligned start: staging must engage
            w.push_all(&data).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(copy.stats().snapshot(), zero.stats().snapshot());
        assert_eq!(
            copy.read_file::<u32>("d").unwrap(),
            zero.read_file::<u32>("d").unwrap()
        );
    }

    #[test]
    fn block_view_scan_matches_streaming() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..103).map(|i| i * 3).collect();
            disk.write_file("view", &data).unwrap();
            let before = disk.stats().snapshot();
            let mut r = disk.open_reader::<u32>("view").unwrap();
            let mut out = Vec::new();
            while let Some(view) = r.next_block_view().unwrap() {
                let n = view.len();
                if n == 0 {
                    out.push(r.next_record().unwrap().unwrap());
                    continue;
                }
                out.extend_from_slice(view);
                r.consume(n);
            }
            assert_eq!(out, data);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_read, 26, "one metered read per block");
            assert_eq!(delta.random_reads, 0);
        }
    }

    #[test]
    fn block_view_after_seek_starts_mid_block() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..12).collect();
        disk.write_file("mid", &data).unwrap();
        let mut r = disk.open_reader::<u32>("mid").unwrap();
        r.seek(6); // mid-block: view exposes only the remainder
        let view: Vec<u32> = r.next_block_view().unwrap().unwrap().to_vec();
        if !view.is_empty() {
            assert_eq!(view, &[6, 7]);
            r.consume(view.len());
            let next = r.next_block_view().unwrap().unwrap();
            assert_eq!(next, &[8, 9, 10, 11]);
        }
    }

    #[test]
    fn pooled_reader_writer_recycle_buffers() {
        let pool = crate::pool::BufferPool::new(8);
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..23).collect();
        {
            let mut w = disk
                .create_writer_pooled::<u32>("p", Some(pool.clone()))
                .unwrap();
            w.push_all(&data).unwrap();
            w.finish().unwrap();
        }
        assert_eq!(pool.idle(), 1);
        {
            let mut r = disk
                .open_reader_pooled::<u32>("p", Some(pool.clone()))
                .unwrap();
            let mut out = Vec::new();
            while let Some(x) = r.next_record().unwrap() {
                out.push(x);
            }
            assert_eq!(out, data);
        }
        assert_eq!(pool.idle(), 1, "reader reused the writer's buffer");
        assert!(pool.hits() >= 1);
    }
}
