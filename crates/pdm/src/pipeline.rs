//! Pipelined block I/O: prefetching readers and write-behind writers.
//!
//! The PDM assumes disks transfer blocks *in parallel* with computation. The
//! plain [`crate::file`] layer is strictly synchronous — every block fill or
//! flush stalls the caller for the device time. This module moves the device
//! work off the caller's thread, with two interchangeable backends selected
//! by [`Disk::with_io_backend`]:
//!
//! * [`IoBackend::Serial`] — one background worker per open file issuing
//!   requests one at a time through a bounded queue. Depth buffers blocks
//!   but never overlaps two transfers of the same stream.
//! * [`IoBackend::Batched`] — requests flow through an [`IoBatch`]
//!   submission queue: up to `depth` reads or writes of the stream are in
//!   flight concurrently (positional I/O, `pread`/`pwrite` on unix), so
//!   prefetch depth > 1 genuinely overlaps.
//!
//! * [`PrefetchReader`] reads blocks ahead of the consumer (up to `depth`
//!   blocks), so decode/merge work overlaps the next block's transfer.
//! * [`WriteBehindWriter`] hands full blocks to the backend, so record
//!   formatting overlaps the previous block's transfer.
//!
//! Both are **observationally identical** to their synchronous counterparts
//! on either backend: they touch exactly the same byte ranges, flush at the
//! same block boundaries, and meter the same [`crate::stats::IoStats`]
//! counters — only wall-clock overlap changes. The differential tests in
//! `extsort` hold them to that contract.
//!
//! Block buffers circulate through a [`BufferPool`]: the backend takes a
//! buffer, fills it, hands ownership to the other side, and the other side
//! returns it to the pool, so steady-state pipelining does not allocate.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::batch::{FileHandle, IoBackend, IoBatch, IoCompletion};
use crate::disk::{Disk, RawFile};
use crate::error::{PdmError, PdmResult};
use crate::file::{records_per_block, Codec};
use crate::pool::BufferPool;
use crate::record::Record;
use crate::stats::IoStats;

/// Default queue depth for pipelined I/O: double buffering (one block in
/// flight while one is being consumed/produced).
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// Cap on the worker threads an [`IoBatch`]-backed stream spins up; beyond
/// this, extra depth only queues (matching typical device queue behavior).
const MAX_BATCH_WORKERS: usize = 8;

fn clamp_depth(depth: usize) -> usize {
    depth.max(1)
}

/// Streams records from a disk file while the I/O backend reads ahead.
///
/// Sequential-only: there is no `seek`/`read_at` (the prefetcher commits to
/// the block order at open). Use [`crate::file::BlockReader`] for random
/// access.
#[derive(Debug)]
pub struct PrefetchReader<R: Record> {
    name: String,
    len: u64,
    pos: u64,
    /// The block currently being consumed.
    buf: Vec<u8>,
    /// Next record offset within `buf`, in bytes.
    buf_off: usize,
    source: ReadSource,
    pool: BufferPool,
    codec: Codec,
    /// Marks this prefetcher as an open request stream for queue diagnostics.
    _stream: crate::stats::StreamGuard,
    _marker: std::marker::PhantomData<R>,
}

#[derive(Debug)]
enum ReadSource {
    Serial {
        rx: Option<Receiver<PdmResult<Vec<u8>>>>,
        worker: Option<JoinHandle<()>>,
    },
    Batched(Box<BatchedReads>),
}

/// Batched read-ahead state: `depth` positional reads in flight, delivered
/// to the consumer in block order (completions may arrive out of order).
#[derive(Debug)]
struct BatchedReads {
    batch: IoBatch,
    handle: FileHandle,
    bytes: u64,
    block_bytes: u64,
    /// Offset of the next block to submit.
    next_off: u64,
    /// Request id (== block index) the consumer needs next.
    expect: u64,
    /// Completions that arrived ahead of `expect`.
    pending: HashMap<u64, IoCompletion>,
    stats: IoStats,
    pool: BufferPool,
    name: String,
    record_size: usize,
}

impl BatchedReads {
    fn submit_next(&mut self) {
        if self.next_off >= self.bytes {
            return;
        }
        let want = (self.bytes - self.next_off).min(self.block_bytes) as usize;
        let mut buf = self.pool.take(want);
        buf.resize(want, 0);
        self.batch.submit_read(self.handle, self.next_off, buf);
        self.next_off += want as u64;
    }

    /// Delivers the next block in file order, metering it exactly like the
    /// serial worker would, and tops the submission queue back up.
    fn next_block(&mut self) -> PdmResult<Vec<u8>> {
        let off = self.expect * self.block_bytes;
        let want = (self.bytes - off).min(self.block_bytes) as usize;
        let done = loop {
            if let Some(done) = self.pending.remove(&self.expect) {
                break done;
            }
            let done = self.batch.reap().expect("prefetch block in flight");
            if done.id == self.expect {
                break done;
            }
            self.pending.insert(done.id, done);
        };
        self.expect += 1;
        let buf = match done.result {
            Ok(got) if got == want => {
                self.stats.on_read(want as u64);
                done.buf
            }
            Ok(got) => {
                return Err(PdmError::Corrupt {
                    name: self.name.clone(),
                    bytes: off + got as u64,
                    record_size: self.record_size,
                })
            }
            Err(e) => return Err(e),
        };
        self.submit_next();
        Ok(buf)
    }
}

impl Disk {
    /// Opens a file for pipelined sequential reading on the disk's
    /// [`IoBackend`]: up to `depth` blocks stay in flight (`depth` is
    /// clamped to ≥ 1).
    ///
    /// Metering is identical to [`Disk::open_reader`] streaming the whole
    /// file: one sequential block read per block.
    pub fn open_prefetch_reader<R: Record>(
        &self,
        name: &str,
        depth: usize,
        pool: BufferPool,
    ) -> PdmResult<PrefetchReader<R>> {
        let rpb = records_per_block::<R>(self)?;
        let depth = clamp_depth(depth);
        let source = match self.io_backend() {
            IoBackend::Serial => {
                let (raw, bytes) = self.open_raw(name)?;
                check_whole_records::<R>(name, bytes)?;
                let (tx, rx) = sync_channel(depth);
                let worker = std::thread::Builder::new()
                    .name(format!("prefetch:{name}"))
                    .spawn({
                        let stats = self.stats().clone();
                        let pool = pool.clone();
                        let name = name.to_string();
                        move || prefetch_worker::<R>(raw, bytes, rpb, stats, pool, name, tx)
                    })
                    .expect("spawn prefetch worker");
                ReadSource::Serial {
                    rx: Some(rx),
                    worker: Some(worker),
                }
            }
            IoBackend::Batched => {
                let mut batch = self.io_batch(depth.min(MAX_BATCH_WORKERS));
                let (handle, bytes) = batch.register_read(name)?;
                check_whole_records::<R>(name, bytes)?;
                let mut reads = Box::new(BatchedReads {
                    batch,
                    handle,
                    bytes,
                    block_bytes: (rpb * R::SIZE) as u64,
                    next_off: 0,
                    expect: 0,
                    pending: HashMap::new(),
                    stats: self.stats().clone(),
                    pool: pool.clone(),
                    name: name.to_string(),
                    record_size: R::SIZE,
                });
                for _ in 0..depth {
                    reads.submit_next();
                }
                ReadSource::Batched(reads)
            }
        };
        let len = self.len_bytes(name)? / R::SIZE as u64;
        Ok(PrefetchReader {
            name: name.to_string(),
            len,
            pos: 0,
            buf: Vec::new(),
            buf_off: 0,
            source,
            pool,
            codec: self.codec(),
            _stream: self.stats().stream_opened(),
            _marker: std::marker::PhantomData,
        })
    }
}

fn check_whole_records<R: Record>(name: &str, bytes: u64) -> PdmResult<()> {
    if !bytes.is_multiple_of(R::SIZE as u64) {
        return Err(PdmError::Corrupt {
            name: name.to_string(),
            bytes,
            record_size: R::SIZE,
        });
    }
    Ok(())
}

/// Serial background read loop: fetch each block in file order, meter it
/// exactly like [`crate::file::BlockReader::next_record`] would, ship it
/// downstream.
fn prefetch_worker<R: Record>(
    raw: RawFile,
    bytes: u64,
    rpb: usize,
    stats: IoStats,
    pool: BufferPool,
    name: String,
    tx: SyncSender<PdmResult<Vec<u8>>>,
) {
    let block_bytes = (rpb * R::SIZE) as u64;
    let mut off = 0u64;
    while off < bytes {
        let want = ((bytes - off).min(block_bytes)) as usize;
        let mut buf = pool.take(want);
        buf.resize(want, 0);
        let result = match raw.read_at(off, &mut buf) {
            Ok(got) if got == want => {
                stats.on_read(want as u64);
                Ok(buf)
            }
            Ok(got) => Err(PdmError::Corrupt {
                name: name.clone(),
                bytes: off + got as u64,
                record_size: R::SIZE,
            }),
            Err(e) => Err(e),
        };
        let failed = result.is_err();
        if tx.send(result).is_err() || failed {
            // Consumer dropped early (or the file is corrupt): stop reading.
            return;
        }
        off += want as u64;
    }
}

impl<R: Record> PrefetchReader<R> {
    /// Total number of records in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records left to stream.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// File name this reader reads.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn refill(&mut self) -> PdmResult<()> {
        let block = match &mut self.source {
            ReadSource::Serial { rx, .. } => {
                let rx = rx.as_ref().expect("prefetch channel closed early");
                rx.recv().expect("prefetch worker died without a verdict")?
            }
            ReadSource::Batched(reads) => reads.next_block()?,
        };
        self.pool.put(std::mem::replace(&mut self.buf, block));
        self.buf_off = 0;
        Ok(())
    }

    /// Returns the next record, or `None` at end of file. Blocks only when
    /// the consumer outruns the prefetcher.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        if self.buf_off >= self.buf.len() {
            self.refill()?;
        }
        if self.codec == Codec::ZeroCopy {
            // Zero-copy fast path: consume the block in place through a
            // borrowed `&[R]` view (no per-record decode).
            if let Some(view) = R::view_slice(&self.buf) {
                let rec = view[self.buf_off / R::SIZE];
                self.buf_off += R::SIZE;
                self.pos += 1;
                return Ok(Some(rec));
            }
        }
        let rec = self
            .buf
            .get(self.buf_off..self.buf_off + R::SIZE)
            .and_then(R::try_read_from)
            .ok_or_else(|| PdmError::Corrupt {
                name: self.name.clone(),
                bytes: self.buf.len() as u64,
                record_size: R::SIZE,
            })?;
        self.buf_off += R::SIZE;
        self.pos += 1;
        Ok(Some(rec))
    }

    /// Borrows the unconsumed remainder of the current block as a record
    /// slice, refilling first when the block is exhausted — the zero-copy
    /// scan path. `Ok(None)` means end of file; an **empty** view means the
    /// buffer cannot be viewed in place (no POD layout, or misaligned), so
    /// stream that block via [`PrefetchReader::next_record`] instead. Use
    /// [`PrefetchReader::consume`] to advance past records taken from the
    /// view.
    pub fn next_block_view(&mut self) -> PdmResult<Option<&[R]>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        if self.buf_off >= self.buf.len() {
            self.refill()?;
        }
        match R::view_slice(&self.buf[self.buf_off..]) {
            Some(view) => Ok(Some(view)),
            None => Ok(Some(&[])),
        }
    }

    /// Advances past `n` records previously obtained from
    /// [`PrefetchReader::next_block_view`].
    pub fn consume(&mut self, n: usize) {
        debug_assert!(self.buf_off + n * R::SIZE <= self.buf.len());
        self.buf_off += n * R::SIZE;
        self.pos += n as u64;
    }

    /// Streams up to `max` records into `out`, bulk-decoding whole prefetched
    /// blocks ([`Record::read_slice_from`]) instead of one virtual call per
    /// record. Returns the record count appended.
    pub fn read_into(&mut self, out: &mut Vec<R>, max: usize) -> PdmResult<usize> {
        let mut got = 0usize;
        while got < max && self.pos < self.len {
            if self.buf_off >= self.buf.len() {
                self.refill()?;
            }
            let avail = (self.buf.len() - self.buf_off) / R::SIZE;
            let take = avail.min(max - got);
            let end = self.buf_off + take * R::SIZE;
            R::read_slice_from(&self.buf[self.buf_off..end], out);
            self.buf_off = end;
            self.pos += take as u64;
            got += take;
        }
        Ok(got)
    }
}

impl<R: Record> Drop for PrefetchReader<R> {
    fn drop(&mut self) {
        match &mut self.source {
            ReadSource::Serial { rx, worker } => {
                // Closing the receiver makes the worker's next send fail,
                // which stops it; then reap the thread so no I/O outlives
                // the handle.
                drop(rx.take());
                if let Some(w) = worker.take() {
                    let _ = w.join();
                }
            }
            // The IoBatch drop discards queued requests and joins its
            // workers; unreaped completions are simply freed.
            ReadSource::Batched(_) => {}
        }
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

/// Appends records to a disk file while the I/O backend performs the block
/// writes.
#[derive(Debug)]
pub struct WriteBehindWriter<R: Record> {
    name: String,
    buf: Vec<u8>,
    block_bytes: usize,
    sink: WriteSink,
    pool: BufferPool,
    written: u64,
    finished: bool,
    /// Marks this writer as an open request stream for queue diagnostics.
    _stream: crate::stats::StreamGuard,
    _marker: std::marker::PhantomData<R>,
}

#[derive(Debug)]
enum WriteSink {
    Serial {
        tx: Option<SyncSender<Vec<u8>>>,
        worker: Option<JoinHandle<PdmResult<()>>>,
    },
    Batched(Box<BatchedWrites>),
}

/// Batched write-behind state: full blocks become positional writes at
/// precomputed offsets, up to `depth` in flight.
#[derive(Debug)]
struct BatchedWrites {
    batch: IoBatch,
    handle: FileHandle,
    next_off: u64,
    depth: usize,
    stats: IoStats,
    pool: BufferPool,
    failed: bool,
}

impl BatchedWrites {
    /// Reaps one completion, metering the write like the serial worker.
    fn reap_one(&mut self) -> PdmResult<()> {
        let done = self.batch.reap().expect("write in flight");
        match done.result {
            Ok(n) => {
                self.stats.on_write(n as u64);
                self.pool.put(done.buf);
                Ok(())
            }
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }
}

impl Disk {
    /// Creates a file for pipelined appending on the disk's [`IoBackend`]:
    /// full blocks go to the backend with up to `depth` in flight (clamped
    /// to ≥ 1).
    ///
    /// Metering and flush boundaries are identical to
    /// [`Disk::create_writer`]: one block write per full block plus one for
    /// a partial tail at [`WriteBehindWriter::finish`].
    pub fn create_write_behind<R: Record>(
        &self,
        name: &str,
        depth: usize,
        pool: BufferPool,
    ) -> PdmResult<WriteBehindWriter<R>> {
        let rpb = records_per_block::<R>(self)?;
        let depth = clamp_depth(depth);
        let sink = match self.io_backend() {
            IoBackend::Serial => {
                let raw = self.create_raw(name)?;
                let (tx, rx) = sync_channel::<Vec<u8>>(depth);
                let worker = std::thread::Builder::new()
                    .name(format!("writebehind:{name}"))
                    .spawn({
                        let stats = self.stats().clone();
                        let pool = pool.clone();
                        move || -> PdmResult<()> {
                            while let Ok(buf) = rx.recv() {
                                raw.append(&buf)?;
                                stats.on_write(buf.len() as u64);
                                pool.put(buf);
                            }
                            raw.sync()?;
                            Ok(())
                        }
                    })
                    .expect("spawn write-behind worker");
                WriteSink::Serial {
                    tx: Some(tx),
                    worker: Some(worker),
                }
            }
            IoBackend::Batched => {
                let mut batch = self.io_batch(depth.min(MAX_BATCH_WORKERS));
                let handle = batch.register_create(name)?;
                WriteSink::Batched(Box::new(BatchedWrites {
                    batch,
                    handle,
                    next_off: 0,
                    depth,
                    stats: self.stats().clone(),
                    pool: pool.clone(),
                    failed: false,
                }))
            }
        };
        Ok(WriteBehindWriter {
            name: name.to_string(),
            buf: pool.take(self.block_bytes()),
            block_bytes: rpb * R::SIZE,
            sink,
            pool,
            written: 0,
            finished: false,
            _stream: self.stats().stream_opened(),
            _marker: std::marker::PhantomData,
        })
    }
}

impl<R: Record> WriteBehindWriter<R> {
    /// Appends one record. Blocks only when the producer outruns the disk
    /// backend by more than the queue depth.
    pub fn push(&mut self, r: R) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let old = self.buf.len();
        self.buf.resize(old + R::SIZE, 0);
        r.write_to(&mut self.buf[old..]);
        self.written += 1;
        if self.buf.len() >= self.block_bytes {
            let full = std::mem::replace(&mut self.buf, self.pool.take(self.block_bytes));
            self.ship(full)?;
        }
        Ok(())
    }

    /// Appends every record in the slice, bulk-encoding one block segment
    /// at a time ([`Record::write_slice_to`]). Flush boundaries — and
    /// therefore metering — are identical to a [`WriteBehindWriter::push`]
    /// loop.
    pub fn push_all(&mut self, rs: &[R]) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let mut rest = rs;
        while !rest.is_empty() {
            let room = (self.block_bytes - self.buf.len()) / R::SIZE;
            let take = rest.len().min(room);
            let old = self.buf.len();
            self.buf.resize(old + take * R::SIZE, 0);
            R::write_slice_to(&rest[..take], &mut self.buf[old..]);
            self.written += take as u64;
            rest = &rest[take..];
            if self.buf.len() >= self.block_bytes {
                let full = std::mem::replace(&mut self.buf, self.pool.take(self.block_bytes));
                self.ship(full)?;
            }
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// File name this writer targets.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flushes the partial last block, waits for the backend to drain and
    /// sync, and returns the total record count. Must be called — dropping
    /// an unfinished writer loses the buffered tail (mirrors real buffered
    /// I/O) and debug-asserts.
    pub fn finish(mut self) -> PdmResult<u64> {
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.ship(tail)?;
        }
        self.finished = true;
        match &mut self.sink {
            WriteSink::Serial { tx, worker } => {
                drop(tx.take()); // close the queue: the worker drains and syncs
                match worker.take().expect("finish called twice").join() {
                    Ok(result) => result.map(|()| self.written),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
            WriteSink::Batched(writes) => {
                while writes.batch.in_flight() > 0 {
                    writes.reap_one()?;
                }
                let handle = writes.handle;
                writes.batch.sync(handle)?;
                Ok(self.written)
            }
        }
    }

    /// Sends one block to the backend, surfacing any backend error.
    fn ship(&mut self, block: Vec<u8>) -> PdmResult<()> {
        match &mut self.sink {
            WriteSink::Serial { tx, worker } => {
                let sender = tx.as_ref().expect("ship after finish");
                if sender.send(block).is_err() {
                    // The worker exited early — only because an append failed.
                    drop(tx.take());
                    let err = match worker.take().expect("worker already reaped").join() {
                        Ok(Ok(())) => unreachable!("worker closed its queue while alive"),
                        Ok(Err(e)) => e,
                        Err(panic) => std::panic::resume_unwind(panic),
                    };
                    self.finished = true; // nothing more can be written
                    return Err(err);
                }
                Ok(())
            }
            WriteSink::Batched(writes) => {
                if writes.failed {
                    self.finished = true;
                    return Err(PdmError::InvalidConfig(format!(
                        "write-behind for {:?} failed earlier",
                        self.name
                    )));
                }
                while writes.batch.in_flight() >= writes.depth {
                    if let Err(e) = writes.reap_one() {
                        self.finished = true;
                        return Err(e);
                    }
                }
                let len = block.len() as u64;
                let off = writes.next_off;
                writes.batch.submit_write(writes.handle, off, block);
                writes.next_off = off + len;
                Ok(())
            }
        }
    }
}

impl<R: Record> Drop for WriteBehindWriter<R> {
    fn drop(&mut self) {
        debug_assert!(
            self.finished || (self.written == 0 && self.buf.is_empty()) || std::thread::panicking(),
            "WriteBehindWriter for {:?} dropped with unflushed records — call finish()",
            self.name
        );
        match &mut self.sink {
            WriteSink::Serial { tx, worker } => {
                drop(tx.take());
                if let Some(w) = worker.take() {
                    let _ = w.join();
                }
            }
            // The IoBatch drop discards queued requests and joins workers.
            WriteSink::Batched(_) => {}
        }
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::ScratchDir;

    /// Every disk in every storage-backend × io-backend combo.
    fn disks_all_backends() -> Vec<(Disk, Option<ScratchDir>)> {
        let mut out = Vec::new();
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let scratch = ScratchDir::new("pdm-pipeline-test").unwrap();
            let fd = Disk::on_files(scratch.path(), 16).with_io_backend(io);
            out.push((Disk::in_memory(16).with_io_backend(io), None));
            out.push((fd, Some(scratch)));
        }
        out
    }

    #[test]
    fn prefetch_reads_whole_file_in_order() {
        for (disk, _g) in disks_all_backends() {
            let data: Vec<u32> = (0..103).map(|i| i * 3).collect();
            disk.write_file("f", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("f", 2, BufferPool::default())
                .unwrap();
            assert_eq!(r.len(), 103);
            let mut out = Vec::new();
            while let Some(x) = r.next_record().unwrap() {
                out.push(x);
            }
            assert_eq!(out, data);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn prefetch_meters_like_sequential_reader() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let disk = Disk::in_memory(16).with_io_backend(io);
            let data: Vec<u32> = (0..10).collect(); // 2 full + 1 partial block
            disk.write_file("m", &data).unwrap();
            let before = disk.stats().snapshot();
            let mut r = disk
                .open_prefetch_reader::<u32>("m", 2, BufferPool::default())
                .unwrap();
            while r.next_record().unwrap().is_some() {}
            drop(r);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_read, 3);
            assert_eq!(delta.bytes_read, 40);
            assert_eq!(delta.random_reads, 0);
        }
    }

    #[test]
    fn prefetch_read_into_bulk_matches_streaming() {
        for (disk, _g) in disks_all_backends() {
            let data: Vec<u32> = (0..103).map(|i| i * 3).collect();
            disk.write_file("bulk", &data).unwrap();
            let before = disk.stats().snapshot();
            let mut r = disk
                .open_prefetch_reader::<u32>("bulk", 2, BufferPool::default())
                .unwrap();
            let mut out = Vec::new();
            assert_eq!(r.read_into(&mut out, 6).unwrap(), 6);
            assert_eq!(r.read_into(&mut out, 1000).unwrap(), 97);
            assert_eq!(r.read_into(&mut out, 1).unwrap(), 0);
            assert_eq!(out, data);
            drop(r);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_read, 26, "one metered read per block");
        }
    }

    #[test]
    fn prefetch_block_views_scan_whole_file() {
        for (disk, _g) in disks_all_backends() {
            let data: Vec<u32> = (0..103).map(|i| i * 7).collect();
            disk.write_file("v", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("v", 3, BufferPool::default())
                .unwrap();
            let mut out = Vec::new();
            while let Some(view) = r.next_block_view().unwrap() {
                let n = view.len();
                if n == 0 {
                    // In-place view unavailable: per-record fallback.
                    out.push(r.next_record().unwrap().unwrap());
                    continue;
                }
                out.extend_from_slice(view);
                r.consume(n);
            }
            assert_eq!(out, data);
        }
    }

    #[test]
    fn prefetch_empty_file() {
        for (disk, _g) in disks_all_backends() {
            disk.write_file::<u32>("e", &[]).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("e", 2, BufferPool::default())
                .unwrap();
            assert!(r.is_empty());
            assert_eq!(r.next_record().unwrap(), None);
        }
    }

    #[test]
    fn prefetch_dropped_early_stops_cleanly() {
        for (disk, _g) in disks_all_backends() {
            let data: Vec<u32> = (0..1000).collect();
            disk.write_file("big", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("big", 2, BufferPool::default())
                .unwrap();
            assert_eq!(r.next_record().unwrap(), Some(0));
            // Dropping with hundreds of blocks unread must not hang or leak.
        }
    }

    #[test]
    fn prefetch_detects_corrupt_length() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let disk = Disk::in_memory(16).with_io_backend(io);
            disk.write_file::<u32>("x", &[1, 2, 3]).unwrap();
            disk.truncate("x", 10).unwrap();
            assert!(matches!(
                disk.open_prefetch_reader::<u32>("x", 2, BufferPool::default()),
                Err(PdmError::Corrupt { .. })
            ));
        }
    }

    #[test]
    fn prefetch_detects_truncation_mid_stream() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let disk = Disk::in_memory(16).with_io_backend(io);
            let data: Vec<u32> = (0..64).collect();
            disk.write_file("t", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("t", 1, BufferPool::default())
                .unwrap();
            // With depth 1 the backend can be at most 2 blocks (8 records)
            // ahead before the first consume, so truncating to 8 records now
            // guarantees it hits the missing tail once the consumer drains
            // the queue.
            disk.truncate("t", 32).unwrap();
            let mut res = Ok(None);
            for _ in 0..=64 {
                res = r.next_record();
                if res.is_err() {
                    break;
                }
            }
            assert!(matches!(res, Err(PdmError::Corrupt { .. })));
        }
    }

    #[test]
    fn write_behind_roundtrip_and_metering() {
        for (disk, _g) in disks_all_backends() {
            let data: Vec<u32> = (0..103).collect(); // 25 full blocks + tail
            let before = disk.stats().snapshot();
            let mut w = disk
                .create_write_behind::<u32>("w", 2, BufferPool::default())
                .unwrap();
            w.push_all(&data).unwrap();
            assert_eq!(w.written(), 103);
            assert_eq!(w.finish().unwrap(), 103);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_written, 26);
            assert_eq!(delta.bytes_written, 103 * 4);
            assert_eq!(delta.files_created, 1);
            assert_eq!(disk.read_file::<u32>("w").unwrap(), data);
        }
    }

    #[test]
    fn write_behind_empty_file() {
        for (disk, _g) in disks_all_backends() {
            let w = disk
                .create_write_behind::<u32>("e", 2, BufferPool::default())
                .unwrap();
            assert_eq!(w.finish().unwrap(), 0);
            assert_eq!(disk.len_records::<u32>("e").unwrap(), 0);
        }
    }

    #[test]
    fn write_behind_duplicate_create_fails() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let disk = Disk::in_memory(16).with_io_backend(io);
            disk.write_file::<u32>("dup", &[1]).unwrap();
            assert!(matches!(
                disk.create_write_behind::<u32>("dup", 2, BufferPool::default()),
                Err(PdmError::AlreadyExists(_))
            ));
        }
    }

    #[test]
    fn pipelined_pair_matches_sequential_io_counts() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let pool = BufferPool::default();
            let seq = Disk::in_memory(16);
            let pipe = Disk::in_memory(16).with_io_backend(io);
            let data: Vec<u32> = (0..537u32).map(|i| i.wrapping_mul(2654435761)).collect();

            seq.write_file("a", &data).unwrap();
            let mut sr = seq.open_reader::<u32>("a").unwrap();
            let mut sw = seq.create_writer::<u32>("b").unwrap();
            while let Some(x) = sr.next_record().unwrap() {
                sw.push(x).unwrap();
            }
            sw.finish().unwrap();

            pipe.write_file("a", &data).unwrap();
            let mut pr = pipe
                .open_prefetch_reader::<u32>("a", 3, pool.clone())
                .unwrap();
            let mut pw = pipe.create_write_behind::<u32>("b", 3, pool).unwrap();
            while let Some(x) = pr.next_record().unwrap() {
                pw.push(x).unwrap();
            }
            pw.finish().unwrap();

            assert_eq!(seq.stats().snapshot(), pipe.stats().snapshot());
            assert_eq!(
                seq.read_file::<u32>("b").unwrap(),
                pipe.read_file::<u32>("b").unwrap()
            );
        }
    }

    #[test]
    fn batched_deep_pipeline_roundtrips_large_file() {
        // Exercise genuinely overlapping requests: depth 8 over many blocks,
        // on real files, with an odd tail.
        let scratch = ScratchDir::new("pdm-pipeline-deep").unwrap();
        let disk = Disk::on_files(scratch.path(), 64).with_io_backend(IoBackend::Batched);
        let data: Vec<u64> = (0..4099u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let pool = BufferPool::default();
        let mut w = disk
            .create_write_behind::<u64>("deep", 8, pool.clone())
            .unwrap();
        w.push_all(&data).unwrap();
        assert_eq!(w.finish().unwrap(), 4099);
        let mut r = disk.open_prefetch_reader::<u64>("deep", 8, pool).unwrap();
        let mut out = Vec::new();
        r.read_into(&mut out, usize::MAX).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn tiny_blocks_rejected_before_any_io() {
        for io in [IoBackend::Serial, IoBackend::Batched] {
            let disk = Disk::in_memory(2).with_io_backend(io);
            assert!(matches!(
                disk.open_prefetch_reader::<u32>("f", 2, BufferPool::default()),
                Err(PdmError::InvalidConfig(_))
            ));
            assert!(matches!(
                disk.create_write_behind::<u32>("f", 2, BufferPool::default()),
                Err(PdmError::InvalidConfig(_))
            ));
        }
    }
}
