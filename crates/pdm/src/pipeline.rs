//! Pipelined block I/O: prefetching readers and write-behind writers.
//!
//! The PDM assumes disks transfer blocks *in parallel* with computation. The
//! plain [`crate::file`] layer is strictly synchronous — every block fill or
//! flush stalls the caller for the device time. This module moves the device
//! work onto a background I/O worker per open file:
//!
//! * [`PrefetchReader`] reads blocks ahead of the consumer through a bounded
//!   queue (`depth` blocks, default double buffering), so decode/merge work
//!   overlaps the next block's transfer.
//! * [`WriteBehindWriter`] hands full blocks to a background appender, so
//!   record formatting overlaps the previous block's transfer.
//!
//! Both are **observationally identical** to their synchronous counterparts:
//! they touch exactly the same byte ranges in exactly the same order, flush
//! at the same block boundaries, and meter the same [`crate::stats::IoStats`]
//! counters — only wall-clock overlap changes. The differential tests in
//! `extsort` hold them to that contract.
//!
//! Block buffers circulate through a [`BufferPool`]: the worker takes a
//! buffer, fills it, passes ownership through the channel, and the other side
//! returns it to the pool, so steady-state pipelining does not allocate.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use crate::disk::{Disk, RawFile};
use crate::error::{PdmError, PdmResult};
use crate::file::records_per_block;
use crate::pool::BufferPool;
use crate::record::Record;

/// Default queue depth for pipelined I/O: double buffering (one block in
/// flight while one is being consumed/produced).
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

fn clamp_depth(depth: usize) -> usize {
    depth.max(1)
}

/// Streams records from a disk file while a background worker reads ahead.
///
/// Sequential-only: there is no `seek`/`read_at` (the prefetcher commits to
/// the block order at open). Use [`crate::file::BlockReader`] for random
/// access.
#[derive(Debug)]
pub struct PrefetchReader<R: Record> {
    name: String,
    len: u64,
    pos: u64,
    /// Records decoded from the block currently being consumed.
    buf: Vec<u8>,
    /// Next record offset within `buf`, in bytes.
    buf_off: usize,
    rx: Option<Receiver<PdmResult<Vec<u8>>>>,
    worker: Option<JoinHandle<()>>,
    pool: BufferPool,
    _marker: std::marker::PhantomData<R>,
}

impl Disk {
    /// Opens a file for pipelined sequential reading: a background worker
    /// keeps up to `depth` blocks in flight (`depth` is clamped to ≥ 1).
    ///
    /// Metering is identical to [`Disk::open_reader`] streaming the whole
    /// file: one sequential block read per block.
    pub fn open_prefetch_reader<R: Record>(
        &self,
        name: &str,
        depth: usize,
        pool: BufferPool,
    ) -> PdmResult<PrefetchReader<R>> {
        let rpb = records_per_block::<R>(self)?;
        let (raw, bytes) = self.open_raw(name)?;
        if bytes % R::SIZE as u64 != 0 {
            return Err(PdmError::Corrupt {
                name: name.to_string(),
                bytes,
                record_size: R::SIZE,
            });
        }
        let len = bytes / R::SIZE as u64;
        let (tx, rx) = sync_channel(clamp_depth(depth));
        let worker = std::thread::Builder::new()
            .name(format!("prefetch:{name}"))
            .spawn({
                let stats = self.stats().clone();
                let pool = pool.clone();
                let name = name.to_string();
                move || prefetch_worker::<R>(raw, bytes, rpb, stats, pool, name, tx)
            })
            .expect("spawn prefetch worker");
        Ok(PrefetchReader {
            name: name.to_string(),
            len,
            pos: 0,
            buf: Vec::new(),
            buf_off: 0,
            rx: Some(rx),
            worker: Some(worker),
            pool,
            _marker: std::marker::PhantomData,
        })
    }
}

/// Background read loop: fetch each block in file order, meter it exactly
/// like [`crate::file::BlockReader::next_record`] would, ship it downstream.
fn prefetch_worker<R: Record>(
    raw: RawFile,
    bytes: u64,
    rpb: usize,
    stats: crate::stats::IoStats,
    pool: BufferPool,
    name: String,
    tx: SyncSender<PdmResult<Vec<u8>>>,
) {
    let block_bytes = (rpb * R::SIZE) as u64;
    let mut off = 0u64;
    while off < bytes {
        let want = ((bytes - off).min(block_bytes)) as usize;
        let mut buf = pool.take(want);
        buf.resize(want, 0);
        let result = match raw.read_at(off, &mut buf) {
            Ok(got) if got == want => {
                stats.on_read(want as u64);
                Ok(buf)
            }
            Ok(got) => Err(PdmError::Corrupt {
                name: name.clone(),
                bytes: off + got as u64,
                record_size: R::SIZE,
            }),
            Err(e) => Err(e),
        };
        let failed = result.is_err();
        if tx.send(result).is_err() || failed {
            // Consumer dropped early (or the file is corrupt): stop reading.
            return;
        }
        off += want as u64;
    }
}

impl<R: Record> PrefetchReader<R> {
    /// Total number of records in the file.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file has no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records left to stream.
    pub fn remaining(&self) -> u64 {
        self.len - self.pos
    }

    /// File name this reader reads.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the next record, or `None` at end of file. Blocks only when
    /// the consumer outruns the prefetcher.
    pub fn next_record(&mut self) -> PdmResult<Option<R>> {
        if self.pos >= self.len {
            return Ok(None);
        }
        if self.buf_off >= self.buf.len() {
            let rx = self.rx.as_ref().expect("prefetch channel closed early");
            let block = rx.recv().expect("prefetch worker died without a verdict")?;
            self.pool.put(std::mem::replace(&mut self.buf, block));
            self.buf_off = 0;
        }
        let rec = self
            .buf
            .get(self.buf_off..self.buf_off + R::SIZE)
            .and_then(R::try_read_from)
            .ok_or_else(|| PdmError::Corrupt {
                name: self.name.clone(),
                bytes: self.buf.len() as u64,
                record_size: R::SIZE,
            })?;
        self.buf_off += R::SIZE;
        self.pos += 1;
        Ok(Some(rec))
    }

    /// Streams up to `max` records into `out`, bulk-decoding whole prefetched
    /// blocks ([`Record::read_slice_from`]) instead of one virtual call per
    /// record. Returns the record count appended.
    pub fn read_into(&mut self, out: &mut Vec<R>, max: usize) -> PdmResult<usize> {
        let mut got = 0usize;
        while got < max && self.pos < self.len {
            if self.buf_off >= self.buf.len() {
                let rx = self.rx.as_ref().expect("prefetch channel closed early");
                let block = rx.recv().expect("prefetch worker died without a verdict")?;
                self.pool.put(std::mem::replace(&mut self.buf, block));
                self.buf_off = 0;
            }
            let avail = (self.buf.len() - self.buf_off) / R::SIZE;
            let take = avail.min(max - got);
            let end = self.buf_off + take * R::SIZE;
            R::read_slice_from(&self.buf[self.buf_off..end], out);
            self.buf_off = end;
            self.pos += take as u64;
            got += take;
        }
        Ok(got)
    }
}

impl<R: Record> Drop for PrefetchReader<R> {
    fn drop(&mut self) {
        // Closing the receiver makes the worker's next send fail, which
        // stops it; then reap the thread so no I/O outlives the handle.
        drop(self.rx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

/// Appends records to a disk file while a background worker performs the
/// block writes.
#[derive(Debug)]
pub struct WriteBehindWriter<R: Record> {
    name: String,
    buf: Vec<u8>,
    block_bytes: usize,
    tx: Option<SyncSender<Vec<u8>>>,
    worker: Option<JoinHandle<PdmResult<()>>>,
    pool: BufferPool,
    written: u64,
    finished: bool,
    _marker: std::marker::PhantomData<R>,
}

impl Disk {
    /// Creates a file for pipelined appending: full blocks are handed to a
    /// background worker (up to `depth` in flight; clamped to ≥ 1).
    ///
    /// Metering and flush boundaries are identical to
    /// [`Disk::create_writer`]: one block write per full block plus one for
    /// a partial tail at [`WriteBehindWriter::finish`].
    pub fn create_write_behind<R: Record>(
        &self,
        name: &str,
        depth: usize,
        pool: BufferPool,
    ) -> PdmResult<WriteBehindWriter<R>> {
        let rpb = records_per_block::<R>(self)?;
        let raw = self.create_raw(name)?;
        let (tx, rx) = sync_channel::<Vec<u8>>(clamp_depth(depth));
        let worker = std::thread::Builder::new()
            .name(format!("writebehind:{name}"))
            .spawn({
                let stats = self.stats().clone();
                let pool = pool.clone();
                move || -> PdmResult<()> {
                    while let Ok(buf) = rx.recv() {
                        raw.append(&buf)?;
                        stats.on_write(buf.len() as u64);
                        pool.put(buf);
                    }
                    raw.sync()?;
                    Ok(())
                }
            })
            .expect("spawn write-behind worker");
        Ok(WriteBehindWriter {
            name: name.to_string(),
            buf: pool.take(self.block_bytes()),
            block_bytes: rpb * R::SIZE,
            tx: Some(tx),
            worker: Some(worker),
            pool,
            written: 0,
            finished: false,
            _marker: std::marker::PhantomData,
        })
    }
}

impl<R: Record> WriteBehindWriter<R> {
    /// Appends one record. Blocks only when the producer outruns the disk
    /// worker by more than the queue depth.
    pub fn push(&mut self, r: R) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let old = self.buf.len();
        self.buf.resize(old + R::SIZE, 0);
        r.write_to(&mut self.buf[old..]);
        self.written += 1;
        if self.buf.len() >= self.block_bytes {
            let full = std::mem::replace(&mut self.buf, self.pool.take(self.block_bytes));
            self.ship(full)?;
        }
        Ok(())
    }

    /// Appends every record in the slice, bulk-encoding one block segment
    /// at a time ([`Record::write_slice_to`]). Flush boundaries — and
    /// therefore metering — are identical to a [`WriteBehindWriter::push`]
    /// loop.
    pub fn push_all(&mut self, rs: &[R]) -> PdmResult<()> {
        debug_assert!(!self.finished, "push after finish");
        let mut rest = rs;
        while !rest.is_empty() {
            let room = (self.block_bytes - self.buf.len()) / R::SIZE;
            let take = rest.len().min(room);
            let old = self.buf.len();
            self.buf.resize(old + take * R::SIZE, 0);
            R::write_slice_to(&rest[..take], &mut self.buf[old..]);
            self.written += take as u64;
            rest = &rest[take..];
            if self.buf.len() >= self.block_bytes {
                let full = std::mem::replace(&mut self.buf, self.pool.take(self.block_bytes));
                self.ship(full)?;
            }
        }
        Ok(())
    }

    /// Records pushed so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// File name this writer targets.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flushes the partial last block, waits for the worker to drain and
    /// sync, and returns the total record count. Must be called — dropping
    /// an unfinished writer loses the buffered tail (mirrors real buffered
    /// I/O) and debug-asserts.
    pub fn finish(mut self) -> PdmResult<u64> {
        if !self.buf.is_empty() {
            let tail = std::mem::take(&mut self.buf);
            self.ship(tail)?;
        }
        self.finished = true;
        drop(self.tx.take()); // close the queue: the worker drains and syncs
        match self.worker.take().expect("finish called twice").join() {
            Ok(result) => result.map(|()| self.written),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Sends one block to the worker, surfacing the worker's error if it
    /// already died.
    fn ship(&mut self, block: Vec<u8>) -> PdmResult<()> {
        let tx = self.tx.as_ref().expect("ship after finish");
        if tx.send(block).is_err() {
            // The worker exited early — only ever because an append failed.
            drop(self.tx.take());
            let err = match self.worker.take().expect("worker already reaped").join() {
                Ok(Ok(())) => unreachable!("worker closed its queue while alive"),
                Ok(Err(e)) => e,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            self.finished = true; // nothing more can be written
            return Err(err);
        }
        Ok(())
    }
}

impl<R: Record> Drop for WriteBehindWriter<R> {
    fn drop(&mut self) {
        debug_assert!(
            self.finished || (self.written == 0 && self.buf.is_empty()) || std::thread::panicking(),
            "WriteBehindWriter for {:?} dropped with unflushed records — call finish()",
            self.name
        );
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
        self.pool.put(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::ScratchDir;

    fn disks() -> Vec<(Disk, Option<ScratchDir>)> {
        let scratch = ScratchDir::new("pdm-pipeline-test").unwrap();
        let fd = Disk::on_files(scratch.path(), 16); // 4 u32 records per block
        vec![(Disk::in_memory(16), None), (fd, Some(scratch))]
    }

    #[test]
    fn prefetch_reads_whole_file_in_order() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..103).map(|i| i * 3).collect();
            disk.write_file("f", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("f", 2, BufferPool::default())
                .unwrap();
            assert_eq!(r.len(), 103);
            let mut out = Vec::new();
            while let Some(x) = r.next_record().unwrap() {
                out.push(x);
            }
            assert_eq!(out, data);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn prefetch_meters_like_sequential_reader() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..10).collect(); // 2 full + 1 partial block
        disk.write_file("m", &data).unwrap();
        let before = disk.stats().snapshot();
        let mut r = disk
            .open_prefetch_reader::<u32>("m", 2, BufferPool::default())
            .unwrap();
        while r.next_record().unwrap().is_some() {}
        drop(r);
        let delta = disk.stats().snapshot().delta(&before);
        assert_eq!(delta.blocks_read, 3);
        assert_eq!(delta.bytes_read, 40);
        assert_eq!(delta.random_reads, 0);
    }

    #[test]
    fn prefetch_read_into_bulk_matches_streaming() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..103).map(|i| i * 3).collect();
            disk.write_file("bulk", &data).unwrap();
            let before = disk.stats().snapshot();
            let mut r = disk
                .open_prefetch_reader::<u32>("bulk", 2, BufferPool::default())
                .unwrap();
            let mut out = Vec::new();
            assert_eq!(r.read_into(&mut out, 6).unwrap(), 6);
            assert_eq!(r.read_into(&mut out, 1000).unwrap(), 97);
            assert_eq!(r.read_into(&mut out, 1).unwrap(), 0);
            assert_eq!(out, data);
            drop(r);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_read, 26, "one metered read per block");
        }
    }

    #[test]
    fn prefetch_empty_file() {
        for (disk, _g) in disks() {
            disk.write_file::<u32>("e", &[]).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("e", 2, BufferPool::default())
                .unwrap();
            assert!(r.is_empty());
            assert_eq!(r.next_record().unwrap(), None);
        }
    }

    #[test]
    fn prefetch_dropped_early_stops_cleanly() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..1000).collect();
            disk.write_file("big", &data).unwrap();
            let mut r = disk
                .open_prefetch_reader::<u32>("big", 2, BufferPool::default())
                .unwrap();
            assert_eq!(r.next_record().unwrap(), Some(0));
            // Dropping with hundreds of blocks unread must not hang or leak.
        }
    }

    #[test]
    fn prefetch_detects_corrupt_length() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("x", &[1, 2, 3]).unwrap();
        disk.truncate("x", 10).unwrap();
        assert!(matches!(
            disk.open_prefetch_reader::<u32>("x", 2, BufferPool::default()),
            Err(PdmError::Corrupt { .. })
        ));
    }

    #[test]
    fn prefetch_detects_truncation_mid_stream() {
        let disk = Disk::in_memory(16);
        let data: Vec<u32> = (0..64).collect();
        disk.write_file("t", &data).unwrap();
        let mut r = disk
            .open_prefetch_reader::<u32>("t", 1, BufferPool::default())
            .unwrap();
        // With depth 1 the worker can be at most 2 blocks (8 records) ahead
        // before the first recv, so truncating to 8 records now guarantees
        // it hits the missing tail once the consumer drains the queue.
        disk.truncate("t", 32).unwrap();
        let mut res = Ok(None);
        for _ in 0..=64 {
            res = r.next_record();
            if res.is_err() {
                break;
            }
        }
        assert!(matches!(res, Err(PdmError::Corrupt { .. })));
    }

    #[test]
    fn write_behind_roundtrip_and_metering() {
        for (disk, _g) in disks() {
            let data: Vec<u32> = (0..103).collect(); // 25 full blocks + tail
            let before = disk.stats().snapshot();
            let mut w = disk
                .create_write_behind::<u32>("w", 2, BufferPool::default())
                .unwrap();
            w.push_all(&data).unwrap();
            assert_eq!(w.written(), 103);
            assert_eq!(w.finish().unwrap(), 103);
            let delta = disk.stats().snapshot().delta(&before);
            assert_eq!(delta.blocks_written, 26);
            assert_eq!(delta.bytes_written, 103 * 4);
            assert_eq!(delta.files_created, 1);
            assert_eq!(disk.read_file::<u32>("w").unwrap(), data);
        }
    }

    #[test]
    fn write_behind_empty_file() {
        for (disk, _g) in disks() {
            let w = disk
                .create_write_behind::<u32>("e", 2, BufferPool::default())
                .unwrap();
            assert_eq!(w.finish().unwrap(), 0);
            assert_eq!(disk.len_records::<u32>("e").unwrap(), 0);
        }
    }

    #[test]
    fn write_behind_duplicate_create_fails() {
        let disk = Disk::in_memory(16);
        disk.write_file::<u32>("dup", &[1]).unwrap();
        assert!(matches!(
            disk.create_write_behind::<u32>("dup", 2, BufferPool::default()),
            Err(PdmError::AlreadyExists(_))
        ));
    }

    #[test]
    fn pipelined_pair_matches_sequential_io_counts() {
        let pool = BufferPool::default();
        let seq = Disk::in_memory(16);
        let pipe = Disk::in_memory(16);
        let data: Vec<u32> = (0..537u32).map(|i| i.wrapping_mul(2654435761)).collect();

        seq.write_file("a", &data).unwrap();
        let mut sr = seq.open_reader::<u32>("a").unwrap();
        let mut sw = seq.create_writer::<u32>("b").unwrap();
        while let Some(x) = sr.next_record().unwrap() {
            sw.push(x).unwrap();
        }
        sw.finish().unwrap();

        pipe.write_file("a", &data).unwrap();
        let mut pr = pipe
            .open_prefetch_reader::<u32>("a", 3, pool.clone())
            .unwrap();
        let mut pw = pipe.create_write_behind::<u32>("b", 3, pool).unwrap();
        while let Some(x) = pr.next_record().unwrap() {
            pw.push(x).unwrap();
        }
        pw.finish().unwrap();

        assert_eq!(seq.stats().snapshot(), pipe.stats().snapshot());
        assert_eq!(
            seq.read_file::<u32>("b").unwrap(),
            pipe.read_file::<u32>("b").unwrap()
        );
    }

    #[test]
    fn tiny_blocks_rejected_before_any_io() {
        let disk = Disk::in_memory(2);
        assert!(matches!(
            disk.open_prefetch_reader::<u32>("f", 2, BufferPool::default()),
            Err(PdmError::InvalidConfig(_))
        ));
        assert!(matches!(
            disk.create_write_behind::<u32>("f", 2, BufferPool::default()),
            Err(PdmError::InvalidConfig(_))
        ));
    }
}
