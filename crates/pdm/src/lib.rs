//! Parallel Disk Model (PDM) substrate.
//!
//! The paper analyses its algorithm in Vitter & Shriver's PDM, where the cost
//! of an algorithm is the number of *block* I/O operations: in one I/O each of
//! `D` disks transfers a block of `B` contiguous records. This crate
//! implements that storage model as a real, testable substrate:
//!
//! * [`record::Record`] — fixed-size binary encoding for sortable records
//!   (the paper sorts 4-byte MPI integers; we also support 64-bit keys and
//!   key+payload records).
//! * [`disk::Disk`] — a simulated disk drive: a namespace of block files with
//!   shared [`stats::IoStats`] counters and a [`model::DiskModel`] service
//!   time. Two backends: real files in a scratch directory (the default for
//!   experiments — real I/O happens) and in-memory buffers (for fast unit and
//!   property tests).
//! * [`file::BlockWriter`] / [`file::BlockReader`] — typed, block-buffered
//!   sequential access plus random `read_at`, all metered in block units.
//! * [`stripe::DiskArray`] — `D > 1` disks with striped writes and
//!   independent reads, matching the PDM's access discipline.
//! * [`params::PdmParams`] — the N/M/B/D/P parameter set and the
//!   `Sort(N) = Θ((n/D) log_m n)` bound the harness checks measured I/O
//!   counts against.

pub mod batch;
pub mod disk;
pub mod error;
pub mod file;
pub mod model;
pub mod params;
pub mod pipeline;
pub mod pool;
pub mod record;
pub mod stats;
pub mod stripe;
pub mod tempdir;

pub use batch::{FileHandle, IoBackend, IoBatch, IoCompletion};
pub use disk::{Backend, Disk};
pub use error::{PdmError, PdmResult};
pub use file::{BlockReader, BlockWriter, Codec};
pub use model::{ContentionModel, DiskModel};
pub use params::PdmParams;
pub use pipeline::{PrefetchReader, WriteBehindWriter, DEFAULT_PIPELINE_DEPTH};
pub use pool::BufferPool;
pub use record::Record;
pub use stats::{IoSnapshot, IoStats, StreamGuard};
pub use stripe::DiskArray;
pub use tempdir::ScratchDir;
