//! Error type for the storage substrate.

use std::fmt;
use std::io;

/// Errors produced by the PDM storage layer.
#[derive(Debug)]
pub enum PdmError {
    /// An underlying OS I/O error (file backend).
    Io(io::Error),
    /// A named file does not exist on the disk.
    NotFound(String),
    /// A file already exists and `create` would clobber it.
    AlreadyExists(String),
    /// The on-disk byte length is not a whole number of records — the file
    /// was truncated or corrupted.
    Corrupt {
        /// File name.
        name: String,
        /// Observed byte length.
        bytes: u64,
        /// Record size the reader expected.
        record_size: usize,
    },
    /// A random access outside the file bounds.
    OutOfRange {
        /// File name.
        name: String,
        /// Requested record index.
        index: u64,
        /// Number of records in the file.
        len: u64,
    },
    /// A configuration that can never perform I/O correctly (e.g. a block
    /// size smaller than one record, or a merge order below the minimum).
    InvalidConfig(String),
    /// A transfer delivered a different record count than its sender
    /// announced (e.g. a truncated redistribution partition). Unlike
    /// [`PdmError::Corrupt`] — a malformed byte length — the bytes here are
    /// well-formed; the *count* disagrees with the declared size.
    SizeMismatch {
        /// What was being transferred (file or stream description).
        what: String,
        /// Records the sender declared.
        expect: u64,
        /// Records that actually arrived.
        got: u64,
    },
}

/// Result alias for storage operations.
pub type PdmResult<T> = Result<T, PdmError>;

impl fmt::Display for PdmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdmError::Io(e) => write!(f, "I/O error: {e}"),
            PdmError::NotFound(name) => write!(f, "file not found: {name:?}"),
            PdmError::AlreadyExists(name) => write!(f, "file already exists: {name:?}"),
            PdmError::Corrupt {
                name,
                bytes,
                record_size,
            } => write!(
                f,
                "file {name:?} is corrupt: {bytes} bytes is not a multiple of the \
                 {record_size}-byte record size"
            ),
            PdmError::OutOfRange { name, index, len } => write!(
                f,
                "record index {index} out of range for file {name:?} of length {len}"
            ),
            PdmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PdmError::SizeMismatch { what, expect, got } => write!(
                f,
                "size mismatch in {what}: sender declared {expect} records, received {got}"
            ),
        }
    }
}

impl std::error::Error for PdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PdmError {
    fn from(e: io::Error) -> Self {
        PdmError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PdmError::NotFound("runs.0".into());
        assert!(e.to_string().contains("runs.0"));
        let e = PdmError::Corrupt {
            name: "x".into(),
            bytes: 7,
            record_size: 4,
        };
        assert!(e.to_string().contains("corrupt"));
        let e = PdmError::OutOfRange {
            name: "x".into(),
            index: 10,
            len: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = PdmError::InvalidConfig("block size 8 smaller than record size 16".into());
        assert!(e.to_string().contains("invalid configuration"));
        let e = PdmError::SizeMismatch {
            what: "partition from node 2".into(),
            expect: 100,
            got: 97,
        };
        let s = e.to_string();
        assert!(s.contains("size mismatch"), "{s}");
        assert!(s.contains("100") && s.contains("97"), "{s}");
    }

    #[test]
    fn io_error_converts_and_sources() {
        let e: PdmError = io::Error::other("boom").into();
        assert!(matches!(e, PdmError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
