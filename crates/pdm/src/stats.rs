//! Shared I/O accounting.
//!
//! The PDM measures algorithms by block transfers, so every read or write of
//! a block through this crate bumps a counter here. The cost models convert
//! counter *deltas* into virtual time at phase boundaries, and the
//! `fig_pdm_bound` harness compares totals against the theoretical
//! `Sort(N)` bound.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe I/O counters for one disk (cheaply cloneable handle).
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    random_reads: AtomicU64,
    seek_bytes: AtomicU64,
    files_created: AtomicU64,
    // Stream-lifecycle gauges. Deliberately NOT part of `IoSnapshot`: they
    // depend on runtime interleaving (how many readers happen to be open at
    // once), so folding them into the snapshot would break the byte-identical
    // differential suites and make virtual-time pricing nondeterministic.
    // Pricing uses stream counts *declared* by the caller; these gauges only
    // feed diagnostics (`io.queue.*` obs metrics).
    cur_streams: AtomicU64,
    peak_streams: AtomicU64,
    stream_opens: AtomicU64,
}

/// RAII handle marking one open request stream (a reader or writer actively
/// issuing I/O against the disk). Dropping it closes the stream.
#[derive(Debug)]
pub struct StreamGuard {
    counters: Arc<Counters>,
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        self.counters.cur_streams.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters; subtraction gives per-phase deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Block-granular reads.
    pub blocks_read: u64,
    /// Block-granular writes.
    pub blocks_written: u64,
    /// Bytes actually transferred by reads.
    pub bytes_read: u64,
    /// Bytes actually transferred by writes.
    pub bytes_written: u64,
    /// Reads that required a seek (random access, e.g. pivot sampling or
    /// splitter probes).
    pub random_reads: u64,
    /// Bytes transferred by those seeking reads (already included in
    /// `bytes_read`; broken out so probe I/O is separately auditable).
    pub seek_bytes: u64,
    /// Files created on the disk.
    pub files_created: u64,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a block read of `bytes` payload bytes.
    pub fn on_read(&self, bytes: u64) {
        self.inner.blocks_read.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a block write of `bytes` payload bytes.
    pub fn on_write(&self, bytes: u64) {
        self.inner.blocks_written.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a random (seeking) block read of `bytes` payload bytes.
    pub fn on_random_read(&self, bytes: u64) {
        self.inner.random_reads.fetch_add(1, Ordering::Relaxed);
        self.inner.seek_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.on_read(bytes);
    }

    /// Records a file creation.
    pub fn on_create(&self) {
        self.inner.files_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers an open request stream; the guard closes it on drop.
    pub fn stream_opened(&self) -> StreamGuard {
        self.inner.stream_opens.fetch_add(1, Ordering::Relaxed);
        let cur = self.inner.cur_streams.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.peak_streams.fetch_max(cur, Ordering::Relaxed);
        StreamGuard {
            counters: Arc::clone(&self.inner),
        }
    }

    /// Streams currently open.
    pub fn concurrent_streams(&self) -> u64 {
        self.inner.cur_streams.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently open streams since the last reset.
    pub fn peak_streams(&self) -> u64 {
        self.inner.peak_streams.load(Ordering::Relaxed)
    }

    /// Total streams ever opened.
    pub fn stream_opens(&self) -> u64 {
        self.inner.stream_opens.load(Ordering::Relaxed)
    }

    /// Resets the peak-stream high-water mark to the current concurrency
    /// (for per-phase contention windows).
    pub fn reset_peak_streams(&self) {
        self.inner.peak_streams.store(
            self.inner.cur_streams.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
    }

    /// Takes a snapshot of all counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            blocks_read: self.inner.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.inner.blocks_written.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            random_reads: self.inner.random_reads.load(Ordering::Relaxed),
            seek_bytes: self.inner.seek_bytes.load(Ordering::Relaxed),
            files_created: self.inner.files_created.load(Ordering::Relaxed),
        }
    }
}

impl IoSnapshot {
    /// Total block transfers (the PDM cost measure).
    pub fn total_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// Total payload bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Component-wise difference `self - earlier` (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            random_reads: self.random_reads.saturating_sub(earlier.random_reads),
            seek_bytes: self.seek_bytes.saturating_sub(earlier.seek_bytes),
            files_created: self.files_created.saturating_sub(earlier.files_created),
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn plus(&self, other: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            blocks_read: self.blocks_read + other.blocks_read,
            blocks_written: self.blocks_written + other.blocks_written,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            random_reads: self.random_reads + other.random_reads,
            seek_bytes: self.seek_bytes + other.seek_bytes,
            files_created: self.files_created + other.files_created,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.on_read(100);
        s.on_read(100);
        s.on_write(50);
        s.on_random_read(25);
        s.on_create();
        let snap = s.snapshot();
        assert_eq!(snap.blocks_read, 3); // random read counts as a read too
        assert_eq!(snap.blocks_written, 1);
        assert_eq!(snap.bytes_read, 225);
        assert_eq!(snap.bytes_written, 50);
        assert_eq!(snap.random_reads, 1);
        assert_eq!(snap.seek_bytes, 25);
        assert_eq!(snap.files_created, 1);
        assert_eq!(snap.total_blocks(), 4);
        assert_eq!(snap.total_bytes(), 275);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        a.on_write(10);
        b.on_write(10);
        assert_eq!(a.snapshot().blocks_written, 2);
    }

    #[test]
    fn delta_and_plus() {
        let s = IoStats::new();
        s.on_read(8);
        let before = s.snapshot();
        s.on_read(8);
        s.on_write(8);
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.blocks_read, 1);
        assert_eq!(d.blocks_written, 1);
        let sum = d.plus(&d);
        assert_eq!(sum.blocks_read, 2);
    }

    #[test]
    fn delta_saturates() {
        let a = IoSnapshot {
            blocks_read: 1,
            ..Default::default()
        };
        let b = IoSnapshot {
            blocks_read: 5,
            ..Default::default()
        };
        assert_eq!(a.delta(&b).blocks_read, 0);
    }

    #[test]
    fn stream_guards_track_concurrency() {
        let s = IoStats::new();
        assert_eq!(s.concurrent_streams(), 0);
        let a = s.stream_opened();
        let b = s.stream_opened();
        assert_eq!(s.concurrent_streams(), 2);
        assert_eq!(s.peak_streams(), 2);
        drop(a);
        assert_eq!(s.concurrent_streams(), 1);
        // Peak survives closes until explicitly reset.
        assert_eq!(s.peak_streams(), 2);
        s.reset_peak_streams();
        assert_eq!(s.peak_streams(), 1);
        let c = s.stream_opened();
        assert_eq!(s.peak_streams(), 2);
        assert_eq!(s.stream_opens(), 3);
        drop(b);
        drop(c);
        assert_eq!(s.concurrent_streams(), 0);
        // Stream accounting never touches the snapshot.
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.on_read(1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().blocks_read, 4000);
    }
}
