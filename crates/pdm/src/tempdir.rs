//! Scratch directories for file-backed disks.
//!
//! A tiny self-contained replacement for the `tempfile` crate: creates a
//! uniquely named directory under the system temp dir (or a caller-chosen
//! root) and removes it on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A scratch directory that is deleted (best-effort) when dropped.
#[derive(Debug)]
pub struct ScratchDir {
    path: PathBuf,
    keep: bool,
}

impl ScratchDir {
    /// Creates a fresh scratch directory under the system temp dir.
    pub fn new(prefix: &str) -> std::io::Result<Self> {
        Self::under(std::env::temp_dir(), prefix)
    }

    /// Creates a fresh scratch directory under `root`.
    pub fn under(root: impl AsRef<Path>, prefix: &str) -> std::io::Result<Self> {
        let unique = format!(
            "{}-{}-{}",
            prefix,
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        );
        let path = root.as_ref().join(unique);
        std::fs::create_dir_all(&path)?;
        Ok(ScratchDir { path, keep: false })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Disables deletion on drop (for post-mortem inspection).
    pub fn keep(&mut self) {
        self.keep = true;
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        if !self.keep {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let p;
        {
            let d = ScratchDir::new("pdm-test").unwrap();
            p = d.path().to_path_buf();
            assert!(p.is_dir());
            std::fs::write(p.join("x"), b"hello").unwrap();
        }
        assert!(!p.exists(), "directory should be removed on drop");
    }

    #[test]
    fn keep_preserves() {
        let p;
        {
            let mut d = ScratchDir::new("pdm-keep").unwrap();
            d.keep();
            p = d.path().to_path_buf();
        }
        assert!(p.exists());
        std::fs::remove_dir_all(&p).unwrap();
    }

    #[test]
    fn two_dirs_are_distinct() {
        let a = ScratchDir::new("pdm-dup").unwrap();
        let b = ScratchDir::new("pdm-dup").unwrap();
        assert_ne!(a.path(), b.path());
    }
}
