//! Property tests for the storage substrate: files round-trip through
//! both backends, I/O accounting matches block arithmetic, and striping
//! preserves logical order.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::collection::vec;
use proptest::prelude::*;

use pdm::record::{decode_all, encode_all, KeyPayload};
use pdm::{Disk, DiskArray, ScratchDir};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn u32_files_roundtrip_both_backends(
        data in vec(any::<u32>(), 0..2000),
        block in 4usize..128,
    ) {
        let block = block / 4 * 4; // whole records per block
        let block = block.max(4);
        let disk = Disk::in_memory(block);
        disk.write_file("f", &data).unwrap();
        prop_assert_eq!(disk.read_file::<u32>("f").unwrap(), data.clone());
        prop_assert_eq!(disk.len_records::<u32>("f").unwrap(), data.len() as u64);
    }

    #[test]
    fn file_backend_roundtrip(data in vec(any::<u64>(), 0..500)) {
        let scratch = ScratchDir::new("pdm-prop").unwrap();
        let disk = Disk::on_files(scratch.path(), 64);
        disk.write_file("f", &data).unwrap();
        prop_assert_eq!(disk.read_file::<u64>("f").unwrap(), data);
    }

    #[test]
    fn keypayload_roundtrip(pairs in vec((any::<u64>(), any::<u64>()), 0..400)) {
        let data: Vec<KeyPayload> =
            pairs.iter().map(|&(k, v)| KeyPayload::new(k, v)).collect();
        let disk = Disk::in_memory(64);
        disk.write_file("f", &data).unwrap();
        prop_assert_eq!(disk.read_file::<KeyPayload>("f").unwrap(), data);
    }

    #[test]
    fn encode_decode_inverse(data in vec(any::<i64>(), 0..500)) {
        prop_assert_eq!(decode_all::<i64>(&encode_all(&data)), data);
    }

    #[test]
    fn block_io_counts_match_arithmetic(n in 0usize..3000, records_per_block in 1usize..64) {
        let disk = Disk::in_memory(records_per_block * 4);
        let data: Vec<u32> = (0..n as u32).collect();
        disk.write_file("f", &data).unwrap();
        disk.read_file::<u32>("f").unwrap();
        let snap = disk.stats().snapshot();
        let blocks = n.div_ceil(records_per_block) as u64;
        prop_assert_eq!(snap.blocks_written, blocks);
        prop_assert_eq!(snap.blocks_read, blocks);
        prop_assert_eq!(snap.bytes_written, n as u64 * 4);
        prop_assert_eq!(snap.bytes_read, n as u64 * 4);
    }

    #[test]
    fn random_access_returns_right_record(data in vec(any::<u32>(), 1..1000), probes in vec(any::<u64>(), 1..30)) {
        let disk = Disk::in_memory(16);
        disk.write_file("f", &data).unwrap();
        let mut rd = disk.open_reader::<u32>("f").unwrap();
        for p in probes {
            let idx = p % data.len() as u64;
            prop_assert_eq!(rd.read_at(idx).unwrap(), data[idx as usize]);
        }
    }

    #[test]
    fn striped_array_preserves_logical_order(
        data in vec(any::<u32>(), 0..1500),
        d in 1usize..5,
    ) {
        let arr = DiskArray::in_memory(d, 16);
        let mut w = arr.striped_writer::<u32>("s").unwrap();
        w.push_all(&data).unwrap();
        prop_assert_eq!(w.finish().unwrap(), data.len() as u64);
        let mut r = arr.striped_reader::<u32>("s").unwrap();
        let mut out = Vec::new();
        while let Some(x) = r.next_record().unwrap() {
            out.push(x);
        }
        prop_assert_eq!(out, data.clone());
        // Striping balances blocks: the busiest disk carries at most its
        // fair share of blocks, written once and read back once.
        let per_disk_fair = (data.len().div_ceil(4)).div_ceil(d) as u64;
        prop_assert!(arr.parallel_ios() <= 2 * per_disk_fair);
        prop_assert_eq!(arr.total_io().bytes_written, data.len() as u64 * 4);
    }

    #[test]
    fn shared_pricing_never_undercuts_dedicated(
        blocks_read in 0u64..5000,
        blocks_written in 0u64..5000,
        random_reads in 0u64..5000,
        bytes_per_block in 1u64..65536,
        streams in 1usize..64,
        queue_depth in 1u32..64,
        settle_us in 0u64..10_000,
    ) {
        use pdm::{ContentionModel, DiskModel, IoSnapshot};
        use sim::SimDuration;

        let random_reads = random_reads.min(blocks_read);
        let io = IoSnapshot {
            blocks_read,
            blocks_written,
            bytes_read: blocks_read * bytes_per_block,
            bytes_written: blocks_written * bytes_per_block,
            random_reads,
            seek_bytes: random_reads * bytes_per_block,
            files_created: 1,
        };
        let mut model = DiskModel::scsi_2000();
        model.contention = ContentionModel {
            queue_depth,
            settle: SimDuration::from_secs(settle_us as f64 * 1e-6),
        };
        let dedicated = model.service_time(&io);
        let shared = model.shared_service_time(&io, streams);
        // Sharing a disk can only add queueing delay, never remove work.
        prop_assert!(shared >= dedicated);
        // A lone stream (or a queue deep enough to hold every stream) pays
        // exactly the dedicated price.
        if streams as u32 <= queue_depth {
            prop_assert_eq!(shared, dedicated);
        }
        // More contenders never make the same delta cheaper.
        let more = model.shared_service_time(&io, streams + 1);
        prop_assert!(more >= shared);
    }

    #[test]
    fn seek_then_stream_matches_suffix(data in vec(any::<u32>(), 1..800), start in any::<u64>()) {
        let disk = Disk::in_memory(32);
        disk.write_file("f", &data).unwrap();
        let start = start % (data.len() as u64 + 1);
        let mut rd = disk.open_reader::<u32>("f").unwrap();
        rd.seek(start);
        let mut out = Vec::new();
        while let Some(x) = rd.next_record().unwrap() {
            out.push(x);
        }
        prop_assert_eq!(out.as_slice(), &data[start as usize..]);
    }
}
