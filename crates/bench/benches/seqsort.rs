//! Criterion benches for the sequential external sorts (wall time of the
//! real work on in-memory disks — the virtual-time tables live in the
//! `table2`/`ablation_seqsort` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use extsort::{ExtSortConfig, RunFormation};
use pdm::Disk;
use workloads::{generate_to_disk, Benchmark, Layout};

fn bench_polyphase(c: &mut Criterion) {
    let mut group = c.benchmark_group("polyphase_sort");
    group.sample_size(10);
    for n in [1u64 << 14, 1 << 16] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let disk = Disk::in_memory(4096);
                generate_to_disk(&disk, "in", Benchmark::Uniform, 1, Layout::single(n)).unwrap();
                let cfg = ExtSortConfig::new((n / 8) as usize).with_tapes(8);
                black_box(extsort::polyphase_sort::<u32>(&disk, "in", "out", "b", &cfg).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_balanced(c: &mut Criterion) {
    let mut group = c.benchmark_group("balanced_kway_sort");
    group.sample_size(10);
    for n in [1u64 << 14, 1 << 16] {
        group.throughput(Throughput::Elements(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let disk = Disk::in_memory(4096);
                generate_to_disk(&disk, "in", Benchmark::Uniform, 1, Layout::single(n)).unwrap();
                let cfg = ExtSortConfig::new((n / 8) as usize).with_tapes(8);
                black_box(
                    extsort::balanced_kway_sort::<u32>(&disk, "in", "out", "b", &cfg).unwrap(),
                )
            });
        });
    }
    group.finish();
}

fn bench_run_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("run_formation");
    group.sample_size(10);
    let n = 1u64 << 16;
    for (name, rf) in [
        ("chunk", RunFormation::ChunkSort),
        ("replacement_selection", RunFormation::ReplacementSelection),
    ] {
        group.throughput(Throughput::Elements(n));
        group.bench_function(name, |b| {
            b.iter(|| {
                let disk = Disk::in_memory(4096);
                generate_to_disk(&disk, "in", Benchmark::Uniform, 1, Layout::single(n)).unwrap();
                let cfg = ExtSortConfig::new((n / 8) as usize)
                    .with_tapes(8)
                    .with_run_formation(rf);
                black_box(
                    extsort::run_formation::form_runs::<u32>(&disk, "in", "rf", 7, &cfg)
                        .unwrap()
                        .total_runs,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(
    seqsort,
    bench_polyphase,
    bench_balanced,
    bench_run_formation
);
criterion_main!(seqsort);
