//! Criterion microbenches for the algorithm kernels: loser-tree merging,
//! pivot selection, sorted partitioning and heterogeneous sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use extsort::{LoserTree, SliceStream};
use hetsort::partition::partition_ranges;
use hetsort::pivots::select_pivots;
use hetsort::sampling::{regular_positions, regular_sample_count};
use hetsort::PerfVector;
use sim::rng::{Pcg64, Rng};

fn sorted_runs(k: usize, per_run: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = Pcg64::new(seed);
    (0..k)
        .map(|_| {
            let mut v: Vec<u32> = (0..per_run).map(|_| rng.next_u32()).collect();
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_loser_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("loser_tree_merge");
    for k in [4usize, 16, 64] {
        let per_run = 65_536 / k;
        group.throughput(Throughput::Elements(65_536));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let runs = sorted_runs(k, per_run, 42);
            b.iter(|| {
                let sources: Vec<_> = runs.iter().cloned().map(SliceStream::new).collect();
                let mut tree = LoserTree::new(sources).unwrap();
                let mut count = 0u64;
                while let Some(x) = tree.next_record().unwrap() {
                    black_box(x);
                    count += 1;
                }
                count
            });
        });
    }
    group.finish();
}

/// The design-choice comparison: the loser tree's log k comparisons per
/// record vs the textbook BinaryHeap merge (heap ops cost ~2 log k).
fn bench_heap_merge_baseline(c: &mut Criterion) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut group = c.benchmark_group("heap_merge_baseline");
    for k in [4usize, 16, 64] {
        let per_run = 65_536 / k;
        group.throughput(Throughput::Elements(65_536));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let runs = sorted_runs(k, per_run, 42);
            b.iter(|| {
                let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = runs
                    .iter()
                    .enumerate()
                    .map(|(s, r)| Reverse((r[0], s, 0)))
                    .collect();
                let mut count = 0u64;
                while let Some(Reverse((x, s, i))) = heap.pop() {
                    black_box(x);
                    count += 1;
                    if i + 1 < runs[s].len() {
                        heap.push(Reverse((runs[s][i + 1], s, i + 1)));
                    }
                }
                count
            });
        });
    }
    group.finish();
}

fn bench_pivot_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_selection");
    for (name, perf) in [
        ("hom4", PerfVector::homogeneous(4)),
        ("het1144", PerfVector::paper_1144()),
        ("hom16", PerfVector::homogeneous(16)),
    ] {
        let total = perf.total();
        let mut rng = Pcg64::new(7);
        let mut sample: Vec<u32> = (0..total * total).map(|_| rng.next_u32()).collect();
        sample.sort_unstable();
        group.bench_function(name, |b| {
            b.iter(|| black_box(select_pivots(black_box(&sample), &perf)));
        });
    }
    group.finish();
}

fn bench_sampling_positions(c: &mut Criterion) {
    let perf = PerfVector::paper_1144();
    c.bench_function("regular_positions_het", |b| {
        b.iter(|| {
            for rank in 0..4 {
                let count = regular_sample_count(&perf, rank);
                black_box(regular_positions(black_box(1 << 20), count));
            }
        });
    });
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_sorted");
    for n in [1usize << 14, 1 << 18] {
        let mut rng = Pcg64::new(9);
        let mut data: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        data.sort_unstable();
        let pivots: Vec<u32> = (1..16u32).map(|i| i.wrapping_mul(0x1000_0000)).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(partition_ranges(black_box(&data), black_box(&pivots))));
        });
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_loser_tree,
    bench_heap_merge_baseline,
    bench_pivot_selection,
    bench_sampling_positions,
    bench_partition
);
criterion_main!(kernels);
