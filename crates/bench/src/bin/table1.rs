//! Table 1 reproduction: the cluster configuration.
//!
//! The paper's Table 1 lists the four Alpha nodes, their caches, disks and
//! kernels. Our cluster is simulated, so this binary prints the simulated
//! equivalents: node names, speed factors (the two "loaded" nodes), the
//! disk service model and the two network fabrics.

use cluster::{CpuModel, NetworkModel};
use hetsort_bench::{print_table, Args};
use pdm::DiskModel;

fn main() {
    let args = Args::parse();
    let cpu = CpuModel::alpha_533();
    let disk = DiskModel::scsi_2000();

    // The paper's protocol: 4 identical Alphas; two are loaded with forked
    // competitor processes, making them ~4x slower. We encode that directly
    // as speed factors.
    let nodes = [
        ("helmvige", 4u64, "unloaded"),
        ("grimgerde", 4, "unloaded"),
        ("siegrune", 1, "loaded (4 competitor processes)"),
        ("rossweisse", 1, "loaded (4 competitor processes)"),
    ];

    let rows: Vec<Vec<String>> = nodes
        .iter()
        .map(|(name, perf, load)| {
            vec![
                name.to_string(),
                cpu.name.to_string(),
                format!("{perf}"),
                load.to_string(),
                disk.name.to_string(),
                "simulated /work (per-node scratch)".to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 1 — simulated cluster configuration (4 Alpha 21164 EV56, 533 MHz)",
        &[
            "Node",
            "CPU model",
            "speed factor",
            "load state",
            "Disk",
            "storage",
        ],
        &rows,
    );

    let fe = NetworkModel::fast_ethernet();
    let my = NetworkModel::myrinet();
    print_table(
        "Interconnects",
        &["Fabric", "latency", "bandwidth (MB/s)", "send overhead"],
        &[
            vec![
                fe.name.to_string(),
                format!("{}", fe.latency),
                format!("{:.1}", fe.bytes_per_sec / 1e6),
                format!("{}", fe.send_overhead),
            ],
            vec![
                my.name.to_string(),
                format!("{}", my.latency),
                format!("{:.1}", my.bytes_per_sec / 1e6),
                format!("{}", my.send_overhead),
            ],
        ],
    );

    if args.selftest {
        assert!(my.wire_time(1 << 20) < fe.wire_time(1 << 20));
        println!("selftest ok: Myrinet outruns Fast-Ethernet on the wire");
    }
}
