//! Critical-path profiler bench: blame attribution and what-if ranking on
//! the paper's 1-1-4-4 cluster.
//!
//! Runs one traced external-PSRS trial (4 nodes, perf `{1,1,4,4}`, 4
//! range-partitioned merge workers), reconstructs the cross-node critical
//! path from the recorded per-phase cost vectors, and reports where every
//! virtual second went: cpu, io-read, io-write, queue-wait, net-transfer,
//! credit-stall or idle-straggler. The what-if table re-prices the path
//! with one category made free; the planner residuals join the adaptive
//! merge planner's predicted merge time against the measured span.
//!
//! The claims the selftest pins:
//!
//! * blame tiles the run: the path's blame categories sum to the sorting
//!   makespan within 1% (in practice to rounding error), and the path
//!   itself spans the full `[0, makespan]` window;
//! * a what-if replay that zeroes *no* category reproduces the makespan
//!   exactly;
//! * the planner's merge prediction lands within 50% of the measured
//!   merge span on every node (mean residual is far tighter).
//!
//! Deterministic per seed (virtual pricing only). Emits
//! `BENCH_critpath.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin critpath_report -- --selftest
//! ```

use extsort::PipelineConfig;
use hetsort::{run_trial, PerfVector, TrialConfig};
use hetsort_bench::{fmt_secs, print_table, Args};

const MERGE_WORKERS: usize = 4;

fn main() {
    let args = Args::parse();
    // Mirrors CI's traced cluster configuration at --quick scale.
    let (n, mem, block) = if args.paper {
        (1u64 << 21, 1 << 17, 32 * 1024)
    } else if args.quick {
        (20_000, 4096, 1024)
    } else {
        (200_000, 16_384, 4096)
    };

    let mut cfg = TrialConfig::new(vec![1, 1, 4, 4], PerfVector::paper_1144(), n);
    cfg.mem_records = mem;
    cfg.tapes = 4;
    cfg.msg_records = 512;
    cfg.block_bytes = block;
    cfg.seed = args.seed;
    cfg.pipeline = PipelineConfig::off().with_merge_workers(MERGE_WORKERS);
    cfg.trace = true;
    // With verification off nothing charges after the last phase mark, so
    // the sorting makespan *is* the end-to-end virtual time and the blame
    // sum can be held to it exactly.
    cfg.verify = false;

    let result = run_trial(&cfg).expect("trial");
    let obs = result.obs.as_ref().expect("traced run records obs");
    let path = obs::critical_path(obs).expect("critical path");
    let whatif = obs::whatif_table(&path);
    let err = path.blame_sum_rel_err();

    let blame_rows: Vec<Vec<String>> = path
        .blame
        .parts()
        .iter()
        .map(|(name, secs)| {
            vec![
                name.to_string(),
                fmt_secs(*secs),
                format!("{:.1}%", 100.0 * secs / path.makespan.max(1e-30)),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Critical-path blame (n = {n}, perf 1-1-4-4, {MERGE_WORKERS} merge workers, \
             makespan {:.5}s, {} segments)",
            path.makespan,
            path.segments.len()
        ),
        &["category", "path secs", "share"],
        &blame_rows,
    );

    let whatif_rows: Vec<Vec<String>> = whatif
        .iter()
        .map(|r| {
            vec![
                r.category.to_string(),
                fmt_secs(r.path_secs),
                fmt_secs(r.estimate_secs),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print_table(
        "What-if (category made free, first-order estimate)",
        &["category", "path secs", "est. secs", "speedup"],
        &whatif_rows,
    );

    if let Some(report) = obs::calibration_report(obs) {
        println!("{report}");
    }
    let mean_rel = obs
        .cluster
        .gauges
        .get("planner.residual.mean_rel")
        .copied()
        .unwrap_or(0.0);
    let max_rel = obs
        .cluster
        .gauges
        .get("planner.residual.max_rel")
        .copied()
        .unwrap_or(0.0);

    let top = whatif.first().expect("seven categories");
    let blame_fields: Vec<String> = path
        .blame
        .parts()
        .iter()
        .map(|(name, secs)| format!("\"{name}\": {secs:.6}"))
        .collect();
    let whatif_json: Vec<String> = whatif
        .iter()
        .map(|r| {
            format!(
                "    {{\"category\": \"{}\", \"path_secs\": {:.6}, \
                 \"estimate_secs\": {:.6}, \"speedup\": {:.4}}}",
                r.category, r.path_secs, r.estimate_secs, r.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"critpath_report\",\n  \"n\": {n},\n  \
         \"perf\": \"1-1-4-4\",\n  \"merge_workers\": {MERGE_WORKERS},\n  \
         \"makespan_secs\": {:.6},\n  \"segments\": {},\n  \
         \"blame_sum_rel_err\": {:.3e},\n  \
         \"planner_residual_mean_rel\": {mean_rel:.4},\n  \
         \"planner_residual_max_rel\": {max_rel:.4},\n  \
         \"whatif_top_category\": \"{}\",\n  \"whatif_top_speedup\": {:.4},\n  \
         \"blame\": {{{}}},\n  \"whatif\": [\n{}\n  ]\n}}\n",
        path.makespan,
        path.segments.len(),
        err,
        top.category,
        top.speedup,
        blame_fields.join(", "),
        whatif_json.join(",\n")
    );
    obs::validate(&json).expect("bench JSON is well-formed");
    std::fs::write("BENCH_critpath.json", &json).expect("write BENCH_critpath.json");
    println!(
        "wrote BENCH_critpath.json (top category {}, {:.2}x if free, \
         planner residual mean |rel| {:.1}%)",
        top.category,
        top.speedup,
        100.0 * mean_rel
    );

    if args.selftest {
        assert!(
            err <= 0.01,
            "blame must sum to the path makespan within 1%, got rel err {err:.3e}"
        );
        let gap = (path.makespan - result.time_secs).abs() / result.time_secs.max(1e-30);
        assert!(
            gap <= 0.01,
            "path makespan {:.6} must match the trial's end-to-end virtual \
             time {:.6} within 1%, got {gap:.3e}",
            path.makespan,
            result.time_secs
        );
        let replay = obs::estimate_without(&path, None);
        assert!(
            replay == path.makespan,
            "what-if with no category zeroed must reproduce the makespan \
             exactly: {replay} vs {}",
            path.makespan
        );
        let first = path.segments.first().expect("non-empty path");
        let last = path.segments.last().expect("non-empty path");
        assert!(first.start.abs() < 1e-9, "path must start at t = 0");
        assert!(
            (last.end - path.makespan).abs() < 1e-9,
            "path must end at the makespan"
        );
        for pair in path.segments.windows(2) {
            assert!(
                (pair[0].end - pair[1].start).abs() < 1e-9,
                "path segments must tile contiguously"
            );
        }
        assert!(
            max_rel > 0.0 && max_rel <= 0.5,
            "planner merge predictions must land within 50% of the measured \
             span on every node, got max |rel| {max_rel:.3}"
        );
        println!("selftest ok");
    }
}
