//! Pipeline speedup bench: sequential vs pipelined execution engine.
//!
//! Runs the *real* polyphase sort both ways — sequential reference and the
//! pipelined engine at 1, 2 and 4 sort workers — on identical data, checks
//! they are observationally identical (byte-identical output, identical
//! block-I/O counters), and prices each run with the suite's virtual cost
//! model (533 MHz Alpha, year-2000 SCSI disk), exactly like the table
//! reproductions: counted comparisons/moves through [`CpuModel`], metered
//! blocks through [`DiskModel::service_time`].
//!
//! The pipelined engine is priced by the `max(cpu, io)` overlap rule with
//! the in-core chunk sorting spread over the worker pool; run formation's
//! comparisons divide by the worker count, the merge passes and buffer
//! moves stay serial, and the whole CPU side overlaps the transfers. This
//! keeps the bench deterministic and host-independent (the CI container
//! has a single core; wall-clock parallel speedup would measure the host,
//! not the engine).
//!
//! A second ladder adds range-partitioned merge workers on top
//! (`combined` rows): the merge-phase selects divide by the merge worker
//! count too, while output moves stay serial and every probe seek the
//! parallel merge issues is paid through the run's own metered I/O. On
//! the year-2000 SCSI model those 8 ms probe seeks can eat the merge-CPU
//! win, so the combined rows are also priced on the modern-NVMe model
//! (`virtual_secs_nvme`), where the engine is CPU-bound and the full
//! benefit shows; the headline `speedup_combined_4` uses the NVMe
//! pricing for both the baseline and the combined run.
//!
//! Emits `BENCH_pipeline.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin pipeline_speedup -- --selftest
//! ```

use std::time::Instant;

use cluster::CpuModel;
use extsort::report::incore_sort_comparisons;
use extsort::{polyphase_sort, ExtSortConfig, PipelineConfig, SortKernel, SortReport};
use hetsort_bench::{fmt_ratio, fmt_secs, print_table, Args};
use pdm::{Disk, DiskModel, IoSnapshot, ScratchDir};
use workloads::{generate_to_disk, Benchmark, Layout};

const BLOCK_BYTES: usize = 4 * 1024;
const WORKER_LADDER: [usize; 3] = [1, 2, 4];

struct Run {
    report: SortReport,
    io: IoSnapshot,
    out_bytes: Vec<u32>,
    wall_secs: f64,
}

fn run_once(n: u64, cfg: &ExtSortConfig, seed: u64, use_files: bool) -> Run {
    let scratch;
    let disk = if use_files {
        scratch = Some(ScratchDir::new("pipe-bench").expect("scratch dir"));
        Disk::on_files(scratch.as_ref().unwrap().path(), BLOCK_BYTES)
    } else {
        scratch = None;
        Disk::in_memory(BLOCK_BYTES)
    };
    let _keep = scratch;
    generate_to_disk(&disk, "input", Benchmark::Uniform, seed, Layout::single(n))
        .expect("generate");
    let before = disk.stats().snapshot();
    let t0 = Instant::now();
    let report = polyphase_sort::<u32>(&disk, "input", "output", "pb", cfg).expect("sort");
    let wall_secs = t0.elapsed().as_secs_f64();
    let io = disk.stats().snapshot().delta(&before);
    let out_bytes = disk.read_file::<u32>("output").expect("read output");
    Run {
        report,
        io,
        out_bytes,
        wall_secs,
    }
}

/// Comparisons spent sorting the initial memory-load chunks — the part the
/// worker pool parallelizes. The remainder of the report's comparisons is
/// the serial merge machinery.
fn formation_comparisons(n: u64, mem_records: usize) -> u64 {
    let m = mem_records as u64;
    let full = n / m;
    let tail = n % m;
    full * incore_sort_comparisons(m) + incore_sort_comparisons(tail)
}

/// The I/O net of seeking reads: parallel merging adds splitter probes and
/// boundary prefills (metered as `random_reads`/`seek_bytes`); all other
/// traffic must match the sequential oracle exactly.
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

/// Virtual seconds for one run: sequential adds CPU and I/O; pipelined
/// overlaps them (`max`) and spreads the chunk sorting over `workers`;
/// merge workers additionally divide the merge-phase selects (counted on
/// the *baseline* report — per-worker trees count differently) while
/// output moves stay serial. I/O is always the run's own metered counters,
/// so parallel rows pay for their probe seeks.
fn virtual_secs(
    baseline: &SortReport,
    run: &Run,
    mem_records: usize,
    workers: Option<usize>,
    merge_workers: usize,
    disk_model: &DiskModel,
) -> f64 {
    let cpu = CpuModel::alpha_533();
    let r = baseline;
    let form = formation_comparisons(r.records, mem_records).min(r.comparisons);
    let merge = r.comparisons - form;
    let moves = r.records * (r.merge_phases as u64 + 1);
    let t_form = cpu.comparisons(form).as_secs();
    let t_merge = cpu.comparisons(merge).as_secs();
    let t_moves = cpu.record_moves(moves).as_secs();
    let t_io = disk_model.service_time(&run.io).as_secs();
    match workers {
        None => t_form + t_merge + t_moves + t_io,
        Some(w) => {
            let t_cpu = t_form / w.max(1) as f64 + t_merge / merge_workers.max(1) as f64 + t_moves;
            t_cpu.max(t_io)
        }
    }
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };
    let tapes = 16;
    // Out-of-core by 8x, but never below the streaming minimum of two
    // blocks per tape.
    let records_per_block = BLOCK_BYTES / 4;
    let mem_records = ((n / 8) as usize).max(2 * tapes * records_per_block);
    // Pin the comparison kernel: this bench isolates the *engine* overlap,
    // and its pricing formula counts full comparisons through the Alpha
    // model. The radix kernel makes every phase I/O-bound, which is the
    // kernel_speedup bench's story, not this one's.
    let cfg_seq = ExtSortConfig::new(mem_records)
        .with_tapes(tapes)
        .with_kernel(SortKernel::Comparison);

    let scsi = DiskModel::scsi_2000();
    let nvme = DiskModel::nvme_modern();

    let seq = run_once(n, &cfg_seq, args.seed, args.files);
    let t_seq = virtual_secs(&seq.report, &seq, mem_records, None, 1, &scsi);
    let t_seq_nvme = virtual_secs(&seq.report, &seq, mem_records, None, 1, &nvme);

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut push_row = |mode: &str, w: usize, mw: usize, t: f64, t_nvme: f64, wall: f64| {
        rows.push(vec![
            mode.to_string(),
            if w == 0 { "-".into() } else { w.to_string() },
            if mw == 0 { "-".into() } else { mw.to_string() },
            fmt_secs(t),
            fmt_ratio(t_seq / t),
            fmt_secs(t_nvme),
            fmt_ratio(t_seq_nvme / t_nvme),
            format!("{wall:.3}"),
        ]);
        // `virtual_records_per_sec` divides n by *modeled* seconds (the
        // Alpha/SCSI cost model), not by host wall time — the historical
        // `records_per_sec` name read as a wall-clock claim. The measured
        // host-side throughput is `wall_records_per_sec`.
        json_rows.push(format!(
            "    {{\"mode\": \"{mode}\", \"workers\": {w}, \"merge_workers\": {mw}, \
             \"virtual_secs\": {t:.6}, \"speedup\": {:.4}, \
             \"virtual_secs_nvme\": {t_nvme:.6}, \"speedup_nvme\": {:.4}, \
             \"virtual_records_per_sec\": {:.1}, \
             \"wall_records_per_sec\": {:.1}, \"wall_secs\": {wall:.4}}}",
            t_seq / t,
            t_seq_nvme / t_nvme,
            n as f64 / t,
            n as f64 / wall.max(1e-9),
        ));
    };
    push_row("sequential", 0, 0, t_seq, t_seq_nvme, seq.wall_secs);

    let mut speedup_at_4 = 0.0;
    let mut speedup_nvme_at_4 = 0.0;
    for &w in &WORKER_LADDER {
        let cfg = cfg_seq
            .clone()
            .with_pipeline(PipelineConfig::with_workers(w));
        let run = run_once(n, &cfg, args.seed, args.files);
        // The engine's contract: pipelining changes nothing observable.
        assert_eq!(run.io, seq.io, "workers {w}: I/O counters diverged");
        assert_eq!(
            run.out_bytes, seq.out_bytes,
            "workers {w}: output bytes diverged"
        );
        assert_eq!(run.report.comparisons, seq.report.comparisons);
        assert_eq!(run.report.initial_runs, seq.report.initial_runs);
        let t = virtual_secs(&seq.report, &run, mem_records, Some(w), 1, &scsi);
        let t_nvme = virtual_secs(&seq.report, &run, mem_records, Some(w), 1, &nvme);
        if w == 4 {
            speedup_at_4 = t_seq / t;
            speedup_nvme_at_4 = t_seq_nvme / t_nvme;
        }
        push_row("pipelined", w, 0, t, t_nvme, run.wall_secs);
    }

    // Combined ladder: sort workers *and* range-partitioned merge workers.
    // The merge-phase selects now divide too; the probe seeks the parallel
    // merge issues show up in this run's own metered I/O and are priced
    // under both disk models.
    let mut speedup_combined_4 = 0.0;
    for &w in &WORKER_LADDER {
        let cfg = cfg_seq
            .clone()
            .with_pipeline(PipelineConfig::with_workers(w).with_merge_workers(w));
        let run = run_once(n, &cfg, args.seed, args.files);
        assert_eq!(
            run.out_bytes, seq.out_bytes,
            "combined {w}+{w}: output bytes diverged"
        );
        assert_eq!(
            non_seek(&run.io),
            non_seek(&seq.io),
            "combined {w}+{w}: non-seek I/O diverged"
        );
        assert_eq!(run.report.initial_runs, seq.report.initial_runs);
        let t = virtual_secs(&seq.report, &run, mem_records, Some(w), w, &scsi);
        let t_nvme = virtual_secs(&seq.report, &run, mem_records, Some(w), w, &nvme);
        if w == 4 {
            speedup_combined_4 = t_seq_nvme / t_nvme;
        }
        push_row("combined", w, w, t, t_nvme, run.wall_secs);
    }

    print_table(
        &format!("Pipeline speedup (n = {n}, M = {mem_records}, T = {tapes})"),
        &[
            "mode", "workers", "merge w", "scsi s", "speedup", "nvme s", "speedup", "wall s",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"pipeline_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"mem_records\": {mem_records},\n  \"tapes\": {tapes},\n  \"block_bytes\": {BLOCK_BYTES},\n  \
         \"cpu_model\": \"alpha_533\",\n  \"disk_model\": \"scsi_2000\",\n  \
         \"nvme_disk_model\": \"nvme_modern\",\n  \
         \"speedup_4_workers\": {speedup_at_4:.4},\n  \
         \"speedup_combined_4\": {speedup_combined_4:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!(
        "wrote BENCH_pipeline.json (speedup at 4 workers: {speedup_at_4:.2}x, \
         combined 4+4 on nvme: {speedup_combined_4:.2}x)"
    );

    if args.selftest {
        assert!(
            speedup_at_4 >= 1.5,
            "pipelined at 4 workers must be >= 1.5x sequential, got {speedup_at_4:.2}x"
        );
        assert!(
            speedup_combined_4 > speedup_nvme_at_4,
            "combined 4+4 must beat pipeline-only 4 under the same pricing: \
             {speedup_combined_4:.2}x vs {speedup_nvme_at_4:.2}x"
        );
        println!("selftest ok");
    }
}
