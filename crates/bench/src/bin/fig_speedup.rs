//! Extension figure: speedup vs cluster width.
//!
//! The paper reports a single point ("the gain with four processors is 3"
//! for the homogeneous configuration). This sweep extends that observation:
//! external PSRS on 1…16 homogeneous nodes, speedup against the one-node
//! run of the same total input, showing where the commodity network and
//! the fixed per-run overheads bend the curve.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{default_mem, fmt_secs, print_table, repeat, Args};
use workloads::Benchmark;

fn time_for_p(args: &Args, p: usize, n: u64) -> f64 {
    repeat(args.trials.min(3), args.seed, |seed| {
        let mut cfg = TrialConfig::new(vec![1; p], PerfVector::homogeneous(p), n);
        cfg.bench = Benchmark::Uniform;
        cfg.mem_records = default_mem(n / p as u64);
        cfg.tapes = 16;
        cfg.msg_records = 8 * 1024;
        cfg.seed = seed;
        cfg.jitter = 0.02;
        cfg.algo = SortAlgo::ExternalPsrs;
        run_trial(&cfg).expect("trial").time_secs
    })
    .mean()
}

fn main() {
    let args = Args::parse();
    let n = if args.paper {
        1 << 24
    } else if args.quick {
        1 << 17
    } else {
        1 << 21
    };
    let widths = [1usize, 2, 4, 8, 16];

    let t1 = time_for_p(&args, 1, n);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &p in &widths {
        let t = if p == 1 { t1 } else { time_for_p(&args, p, n) };
        let s = t1 / t;
        speedups.push(s);
        rows.push(vec![
            p.to_string(),
            fmt_secs(t),
            format!("{s:.2}"),
            format!("{:.1}%", 100.0 * s / p as f64),
        ]);
    }
    print_table(
        &format!("Speedup sweep — homogeneous external PSRS of {n} records"),
        &["p", "time (s)", "speedup vs p=1", "efficiency"],
        &rows,
    );
    println!("paper reference: gain ≈ 3 on 4 processors (Fast-Ethernet, hom. declared)");

    if args.selftest {
        assert!(
            speedups[2] > 1.8,
            "4 nodes should show a clear speedup, got {:.2}",
            speedups[2]
        );
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0] * 0.9),
            "speedup should not collapse as p grows: {speedups:?}"
        );
        let eff16 = speedups[4] / 16.0;
        assert!(
            eff16 < 0.95,
            "efficiency should visibly decay by p=16 (network/overheads), got {eff16:.2}"
        );
        println!("selftest ok: speedup grows and efficiency decays, as expected");
    }
}
