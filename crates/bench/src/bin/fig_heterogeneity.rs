//! Extension figure: how much the declared perf vector matters as the
//! cluster gets more lopsided.
//!
//! Table 3 gives one heterogeneity point (two nodes 4× slower: declaring
//! `{1,1,4,4}` wins ~2×). This sweep varies the load factor `k` in
//! hardware `{1,1,k,k}` and compares three declarations: the truth
//! (`{1,1,k,k}`), homogeneous ignorance (`{1,1,1,1}`), and a stale
//! miscalibration (`{1,1,k/2,k/2}`), showing the win growing with `k` and
//! the cost of calibration error.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{default_mem, fmt_secs, print_table, repeat, Args};
use workloads::Benchmark;

fn time_for(args: &Args, hardware: &[u64], declared: PerfVector, n: u64) -> f64 {
    repeat(args.trials.min(3), args.seed, |seed| {
        let mut cfg = TrialConfig::new(hardware.to_vec(), declared.clone(), n);
        cfg.bench = Benchmark::Uniform;
        cfg.mem_records = default_mem(n / 4);
        cfg.tapes = 16;
        cfg.msg_records = 8 * 1024;
        cfg.seed = seed;
        cfg.jitter = 0.02;
        cfg.algo = SortAlgo::ExternalPsrs;
        run_trial(&cfg).expect("trial").time_secs
    })
    .mean()
}

fn main() {
    let args = Args::parse();
    let n = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };

    let mut rows = Vec::new();
    let mut wins = Vec::new();
    for k in [1u64, 2, 4, 8, 16] {
        let hardware = vec![1, 1, k, k];
        let truth = time_for(&args, &hardware, PerfVector::new(vec![1, 1, k, k]), n);
        let ignorant = time_for(&args, &hardware, PerfVector::homogeneous(4), n);
        let stale = time_for(
            &args,
            &hardware,
            PerfVector::new(vec![1, 1, (k / 2).max(1), (k / 2).max(1)]),
            n,
        );
        let win = ignorant / truth;
        wins.push((k, win));
        rows.push(vec![
            format!("{{1,1,{k},{k}}}"),
            fmt_secs(truth),
            fmt_secs(ignorant),
            fmt_secs(stale),
            format!("{win:.2}x"),
        ]);
    }
    print_table(
        &format!("Heterogeneity sweep — hardware {{1,1,k,k}}, n = {n}"),
        &[
            "hardware",
            "declared = truth",
            "declared {1,1,1,1}",
            "declared k/2 (stale)",
            "truth vs ignorant",
        ],
        &rows,
    );
    println!("paper reference point: k = 4 → 1.96x (Table 3)");

    if args.selftest {
        // k = 1: identical (the declarations coincide); win ≈ 1.
        assert!((0.95..1.05).contains(&wins[0].1), "k=1 should be neutral");
        // The win grows monotonically with the load factor.
        for w in wins.windows(2) {
            assert!(
                w[1].1 > w[0].1 * 0.98,
                "win should grow with heterogeneity: {wins:?}"
            );
        }
        // And k = 4 lands near the paper's ~2x.
        let k4 = wins[2].1;
        assert!(
            (1.4..3.0).contains(&k4),
            "k=4 win {k4:.2} should be around the paper's 1.96"
        );
        println!("selftest ok: the calibration win grows with the load factor");
    }
}
