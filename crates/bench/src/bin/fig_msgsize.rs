//! Message-size study (the paper's in-text parameter sweep).
//!
//! The paper reports that with 8-integer packets the homogeneous sort of
//! 2²¹ integers takes 133.61 s — *worse than sequential* — while 8 Ki-integer
//! messages bring it down to 32.6 s, "the best time performance". This
//! binary sweeps the redistribution message size and prints the series
//! (time vs message size), which is the crossover the paper tunes to 32 Kb.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{default_mem, fmt_secs, print_table, repeat, Args};
use workloads::Benchmark;

fn main() {
    let args = Args::parse();
    let n = if args.paper {
        1 << 21
    } else if args.quick {
        1 << 15
    } else {
        1 << 19
    };
    let msg_sizes: &[usize] = &[8, 64, 512, 4096, 8192, 32768, 131072];

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for &msg in msg_sizes {
        let summary = repeat(args.trials.min(3), args.seed, |seed| {
            // The paper keeps its node loads for this experiment ("we keep,
            // in the remainder of our experiments, our initial loads").
            let mut cfg = TrialConfig::new(vec![1, 1, 4, 4], PerfVector::homogeneous(4), n);
            cfg.bench = Benchmark::Uniform;
            cfg.mem_records = default_mem(n);
            cfg.tapes = 16;
            cfg.msg_records = msg;
            cfg.seed = seed;
            cfg.jitter = 0.02;
            cfg.algo = SortAlgo::ExternalPsrs;
            run_trial(&cfg).expect("trial").time_secs
        });
        times.push(summary.mean());
        rows.push(vec![
            msg.to_string(),
            format!("{} Kb", msg * 4 / 1024),
            fmt_secs(summary.mean()),
            fmt_secs(summary.stddev()),
        ]);
    }
    print_table(
        &format!("Message-size sweep — homogeneous external PSRS of {n} integers"),
        &["msg (integers)", "msg (bytes)", "Exe Time (s)", "Deviation"],
        &rows,
    );
    println!("paper reference points (2^21 integers): 8-int packets -> 133.61s; 8Ki-int -> 32.6s");

    if args.selftest {
        let t_tiny = times[0];
        let t_8k = times[4];
        assert!(
            t_tiny > 1.5 * t_8k,
            "8-integer packets ({t_tiny:.2}s) should be far worse than 8Ki ({t_8k:.2}s)"
        );
        // Beyond ~8Ki the curve flattens: no more than mild gains.
        let t_last = *times.last().unwrap();
        assert!(
            t_last > 0.7 * t_8k,
            "returns should diminish past 8Ki records"
        );
        println!("selftest ok: small packets are catastrophic, 8Ki+ is flat");
    }
}
