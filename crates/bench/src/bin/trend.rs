//! Continuous perf-trend registry over the `BENCH_*.json` artifacts.
//!
//! Every bench binary emits one JSON file with one or more headline
//! metrics (speedups, higher is better — the `scale` bench carries both
//! the runtime-throughput and the grouped-splitter headline). This tool
//! ingests all of them, appends the observations to a history log
//! (`target/trend_history.jsonl` — one JSON line per headline per run),
//! and gates against the committed baselines in `BENCH_trend.json`:
//!
//! * `--check` fails (exit 1) if any gated headline drops below
//!   `gate_ratio` x its baseline at the same problem size. Baselines are
//!   keyed by `(bench, n, key)`, so CI's `--quick` artifacts compare
//!   against quick-scale baselines and full runs against full-scale
//!   ones, and one bench file can gate several independent headlines; an
//!   observation with no same-size baseline is recorded but not gated.
//!   A headline key missing from an artifact (e.g. a `--splitter`-
//!   restricted `scale` run never computes the grouped comparison) is
//!   skipped, not failed.
//! * `--update` rewrites `BENCH_trend.json` with the current headline
//!   values (preserving baselines at other problem sizes).
//!
//! Wall-clock-measured headlines (`wallclock_speedup`) are host-dependent
//! and therefore record-only: they get a `gate_ratio` of 0.
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin trend -- --check
//! ```

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use obs::Json;

const BASELINE_FILE: &str = "BENCH_trend.json";
const HISTORY_FILE: &str = "target/trend_history.jsonl";
const DEFAULT_GATE: f64 = 0.85;

/// `bench` field value → (headline key, gate ratio). A ratio of 0 records
/// the headline without gating it. A bench may carry several headlines;
/// each is keyed and gated independently.
const HEADLINES: &[(&str, &str, f64)] = &[
    ("pipeline_speedup", "speedup_4_workers", DEFAULT_GATE),
    ("kernel_speedup", "speedup_uniform", DEFAULT_GATE),
    ("overlap_speedup", "speedup_1144_1ki", DEFAULT_GATE),
    ("parmerge_speedup", "speedup_4_workers", DEFAULT_GATE),
    ("planner_speedup", "nvme_adaptive_speedup", DEFAULT_GATE),
    ("critpath_report", "whatif_top_speedup", DEFAULT_GATE),
    ("wallclock_speedup", "speedup_upgraded", 0.0),
    ("scale", "events_vs_threads_p64", DEFAULT_GATE),
    ("scale", "grouped_speedup_p256", DEFAULT_GATE),
];

#[derive(Debug, Clone)]
struct Observation {
    bench: String,
    n: u64,
    key: &'static str,
    value: f64,
    gate_ratio: f64,
}

fn read_observations(path: &Path) -> Vec<Observation> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let doc = match obs::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("warning: {}: invalid JSON ({e}), skipping", path.display());
            return Vec::new();
        }
    };
    let Some(bench) = doc.get("bench").and_then(Json::as_str) else {
        return Vec::new();
    };
    let keys: Vec<&(&str, &str, f64)> = HEADLINES.iter().filter(|(b, _, _)| *b == bench).collect();
    if keys.is_empty() {
        eprintln!(
            "warning: {}: unknown bench {bench:?}, skipping",
            path.display()
        );
        return Vec::new();
    }
    let Some(n) = doc.get("n").and_then(Json::as_f64) else {
        return Vec::new();
    };
    keys.iter()
        // A missing key is fine: restricted runs omit some headlines.
        .filter_map(|&&(_, key, gate_ratio)| {
            Some(Observation {
                bench: bench.to_string(),
                n: n as u64,
                key,
                value: doc.get(key)?.as_f64()?,
                gate_ratio,
            })
        })
        .collect()
}

/// Baselines from `BENCH_trend.json`, keyed by `(bench, n, key)`.
fn read_baselines(path: &Path) -> BTreeMap<(String, u64, String), f64> {
    let mut out = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    let doc = obs::parse(&text).expect("BENCH_trend.json is well-formed JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("hetsort-trend-v1"),
        "BENCH_trend.json schema mismatch"
    );
    let Some(Json::Arr(entries)) = doc.get("baselines") else {
        return out;
    };
    for e in entries {
        let bench = e.get("bench").and_then(Json::as_str).expect("bench");
        let n = e.get("n").and_then(Json::as_f64).expect("n") as u64;
        let key = e.get("key").and_then(Json::as_str).expect("key");
        let value = e.get("value").and_then(Json::as_f64).expect("value");
        out.insert((bench.to_string(), n, key.to_string()), value);
    }
    out
}

fn write_baselines(path: &Path, baselines: &BTreeMap<(String, u64, String), f64>) {
    let entries: Vec<String> = baselines
        .iter()
        .map(|((bench, n, key), value)| {
            format!(
                "    {{\"bench\": \"{bench}\", \"n\": {n}, \"key\": \"{key}\", \
                 \"value\": {value:.4}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"hetsort-trend-v1\",\n  \"gate_ratio\": {DEFAULT_GATE},\n  \
         \"baselines\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    obs::validate(&json).expect("trend JSON is well-formed");
    std::fs::write(path, json).expect("write baseline file");
}

fn append_history(path: &Path, observations: &[Observation]) {
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        eprintln!("warning: cannot open history file {}", path.display());
        return;
    };
    for o in observations {
        let _ = writeln!(
            f,
            "{{\"ts\": {ts}, \"bench\": \"{}\", \"n\": {}, \"key\": \"{}\", \
             \"value\": {:.4}}}",
            o.bench, o.n, o.key, o.value
        );
    }
}

fn main() {
    let mut check = false;
    let mut update = false;
    let mut dir = PathBuf::from(".");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check = true,
            "--update" => update = true,
            "--dir" => dir = PathBuf::from(it.next().expect("--dir needs a path")),
            "--help" | "-h" => {
                eprintln!("flags: --check | --update | --dir PATH");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other:?} (try --help)"),
        }
    }

    let mut observations: Vec<Observation> = Vec::new();
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("readable bench directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            name.starts_with("BENCH_") && name.ends_with(".json") && name != BASELINE_FILE
        })
        .collect();
    names.sort();
    for path in &names {
        observations.extend(read_observations(path));
    }
    if observations.is_empty() {
        eprintln!("no BENCH_*.json artifacts found in {}", dir.display());
        std::process::exit(if check { 1 } else { 0 });
    }
    append_history(&dir.join(HISTORY_FILE), &observations);

    let baseline_path = dir.join(BASELINE_FILE);
    let mut baselines = read_baselines(&baseline_path);
    let mut failures = Vec::new();
    println!(
        "{:<18} {:>10} {:<24} {:>10} {:>10} {:>8}  status",
        "bench", "n", "key", "headline", "baseline", "ratio"
    );
    for o in &observations {
        let base = baselines.get(&(o.bench.clone(), o.n, o.key.to_string()));
        let (status, ratio_str) = match base {
            Some(&b) if b > 0.0 => {
                let ratio = o.value / b;
                let status = if o.gate_ratio <= 0.0 {
                    "record-only"
                } else if ratio >= o.gate_ratio {
                    "ok"
                } else {
                    failures.push(format!(
                        "{} (n = {}): {} = {:.4} is below {:.0}% of baseline {:.4}",
                        o.bench,
                        o.n,
                        o.key,
                        o.value,
                        o.gate_ratio * 100.0,
                        b
                    ));
                    "REGRESSION"
                };
                (status, format!("{ratio:.3}"))
            }
            _ => ("no-baseline", "-".to_string()),
        };
        println!(
            "{:<18} {:>10} {:<24} {:>10.4} {:>10} {:>8}  {status}",
            o.bench,
            o.n,
            o.key,
            o.value,
            base.map_or("-".to_string(), |b| format!("{b:.4}")),
            ratio_str
        );
    }

    if update {
        for o in &observations {
            baselines.insert((o.bench.clone(), o.n, o.key.to_string()), o.value);
        }
        write_baselines(&baseline_path, &baselines);
        println!(
            "updated {} ({} baselines)",
            baseline_path.display(),
            baselines.len()
        );
    }
    if check && !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        std::process::exit(1);
    }
    if check {
        println!("trend ok: no headline regressions");
    }
}
