//! Table 2 reproduction: sequential external sorting per node, and the
//! paper's `perf`-calibration protocol.
//!
//! The paper runs its sequential polyphase merge sort on every node for
//! input sizes 2²¹…2²⁵ integers (benchmark 0, uniform), reports mean time
//! and deviation, observes that the unloaded nodes are ~4× faster than the
//! loaded ones, and fills the performance vector with `{1,1,4,4}`.
//!
//! This binary does the same on the simulated nodes: each size is sorted
//! `--trials` times per node class; the ratio of the class means yields the
//! recommended perf vector.

use hetsort_bench::{default_mem, fmt_secs, print_table, repeat, sequential_polyphase_trial, Args};
use workloads::Benchmark;

fn main() {
    let args = Args::parse();
    let sizes = args.size_ladder();
    let jitter = 0.03;
    // (paper node name, slowdown factor)
    let nodes = [
        ("helmvige (unloaded)", 1.0f64),
        ("grimgerde (unloaded)", 1.0),
        ("siegrune (loaded)", 4.0),
        ("rossweisse (loaded)", 4.0),
    ];

    let mut rows = Vec::new();
    // Class means at the largest size drive the calibration.
    let mut fast_mean_at_max = 0.0f64;
    let mut slow_mean_at_max = 0.0f64;
    for (name, slowdown) in nodes {
        for &n in &sizes {
            let mem = default_mem(n);
            let summary = repeat(args.trials, args.seed, |seed| {
                sequential_polyphase_trial(
                    n,
                    mem,
                    16,
                    slowdown,
                    seed,
                    jitter,
                    args.files,
                    Benchmark::Uniform,
                )
                .0
            });
            if n == *sizes.last().unwrap() {
                if slowdown == 1.0 {
                    fast_mean_at_max += summary.mean() / 2.0;
                } else {
                    slow_mean_at_max += summary.mean() / 2.0;
                }
            }
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                fmt_secs(summary.mean()),
                fmt_secs(summary.stddev()),
            ]);
        }
    }
    print_table(
        "Table 2 — sequential polyphase merge sort per node (benchmark 0)",
        &["Node", "Input size", "Exe. Time (s)", "Deviation"],
        &rows,
    );

    // The calibration protocol: ratios to the slowest node, rounded.
    let ratio = slow_mean_at_max / fast_mean_at_max;
    let perf_fast = ratio.round() as u64;
    println!(
        "calibration: loaded/unloaded time ratio at n = {} is {ratio:.3}",
        sizes.last().unwrap()
    );
    println!("recommended perf vector: {{{perf_fast},{perf_fast},1,1}} (fast nodes first)");
    println!("(the paper concludes {{4,4,1,1}} — written {{1,1,4,4}} in its node order)");

    if args.selftest {
        assert!(
            (3.3..4.7).contains(&ratio),
            "calibration ratio {ratio:.3} should recover the 4x load factor"
        );
        assert_eq!(perf_fast, 4, "perf vector should come out as 4:1");
        println!("selftest ok: calibration recovers the paper's {{1,1,4,4}}");
    }
}
