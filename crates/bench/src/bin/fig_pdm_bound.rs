//! Figure 1 / PDM-bound study: measured block I/Os vs the `Sort(N)` bound.
//!
//! The paper's Figure 1 and Theorem 1 present Vitter's PDM and the
//! `Sort(N) = Θ((n/D)·log_m n)` I/O bound that the polyphase-based
//! algorithm is designed to match. This binary sorts a ladder of problem
//! sizes (and a ladder of memory sizes) and prints measured block
//! transfers against the bound, confirming the implementation sits within
//! a small constant of optimal.

use hetsort_bench::{print_table, sequential_polyphase_trial, Args};
use pdm::PdmParams;
use workloads::Benchmark;

fn main() {
    let args = Args::parse();
    let block_records = (32 * 1024) / 4; // 32 KiB blocks of u32

    // PDM needs M < N: with 32 KiB blocks and a 16-tape merge the smallest
    // honest out-of-core size is 2^17 records, so clamp the quick ladder.
    let sizes: Vec<u64> = args
        .size_ladder()
        .into_iter()
        .map(|n| n.max(1 << 17))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    // Sweep N at fixed M.
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for &n in &sizes {
        let mem = ((n / 16) as usize).max(4 * block_records);
        let tapes = 8.min(mem / block_records);
        let (_, report) = sequential_polyphase_trial(
            n,
            mem,
            tapes,
            1.0,
            args.seed,
            0.0,
            args.files,
            Benchmark::Uniform,
        );
        let params = PdmParams::new(n, mem as u64, block_records as u64, 1, 1);
        let bound = params.sort_io_bound();
        let measured = report.io.total_blocks();
        let ratio = measured as f64 / bound as f64;
        ratios.push(ratio);
        rows.push(vec![
            n.to_string(),
            mem.to_string(),
            params.n_blocks().to_string(),
            params.m_blocks().to_string(),
            params.merge_levels().to_string(),
            bound.to_string(),
            measured.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    print_table(
        "PDM bound — measured polyphase block I/Os vs Sort(N) = 2·(n/D)·⌈log_m n⌉",
        &[
            "N",
            "M",
            "n=N/B",
            "m=M/B",
            "levels",
            "bound (blocks)",
            "measured",
            "measured/bound",
        ],
        &rows,
    );

    // Sweep M at fixed N: fewer memory blocks → more levels → more I/O.
    let n = *sizes.last().unwrap();
    let mut rows = Vec::new();
    for shift in [3u32, 4, 5, 6] {
        let mem = ((n >> shift) as usize).max(4 * block_records);
        let tapes = 8.min(mem / block_records).max(3);
        let (_, report) = sequential_polyphase_trial(
            n,
            mem,
            tapes,
            1.0,
            args.seed,
            0.0,
            args.files,
            Benchmark::Uniform,
        );
        let params = PdmParams::new(n, mem as u64, block_records as u64, 1, 1);
        rows.push(vec![
            format!("N/{}", 1u64 << shift),
            params.merge_levels().to_string(),
            params.sort_io_bound().to_string(),
            report.io.total_blocks().to_string(),
        ]);
    }
    print_table(
        &format!("Memory sweep at N = {n}"),
        &["M", "levels", "bound", "measured"],
        &rows,
    );

    // Sweep D at fixed N and M: the striped two-phase sort realizes the
    // 1/D factor of Sort(N) = Θ((n/D)·log_m n).
    // One merge pass buffers one block per run per disk, so use 4 KiB
    // blocks and a quarter-size memory (4 runs) to fit D = 8.
    let n_d = (n / 4).max(1 << 17);
    let mem = (n_d / 4) as usize;
    let d_block_records = 4096 / 4;
    let mut rows = Vec::new();
    let mut parallel_ios = Vec::new();
    for d in [1usize, 2, 4, 8] {
        let arr = pdm::DiskArray::in_memory(d, 4096);
        let mut w = arr.striped_writer::<u32>("input").expect("writer");
        workloads::generate_into(
            workloads::Benchmark::Uniform,
            args.seed,
            workloads::Layout::single(n_d),
            |x| w.push(x).expect("push"),
        );
        w.finish().expect("finish");
        let before = arr.parallel_ios();
        extsort::striped_two_phase_sort::<u32>(&arr, "input", "output", "j", mem)
            .expect("striped sort");
        let pio = arr.parallel_ios() - before;
        let params = PdmParams::new(n_d, mem as u64, d_block_records as u64, d as u64, 1);
        parallel_ios.push(pio);
        rows.push(vec![
            d.to_string(),
            params.sort_io_bound().to_string(),
            arr.total_io().total_blocks().to_string(),
            pio.to_string(),
            format!("{:.2}", parallel_ios[0] as f64 / pio as f64),
        ]);
    }
    print_table(
        &format!("Disk sweep at N = {n_d} (striped two-phase sort; bound has the 1/D factor)"),
        &[
            "D",
            "bound (par. I/Os)",
            "total blocks",
            "parallel I/Os (busiest disk)",
            "speedup vs D=1",
        ],
        &rows,
    );

    if args.selftest {
        for (i, r) in ratios.iter().enumerate() {
            assert!(
                (0.3..4.0).contains(r),
                "size index {i}: measured/bound ratio {r:.3} strays from Θ(1)"
            );
        }
        let d4 = parallel_ios[0] as f64 / parallel_ios[2] as f64;
        assert!(
            (3.0..5.0).contains(&d4),
            "D=4 should cut parallel I/Os ~4x, got {d4:.2}"
        );
        println!(
            "selftest ok: polyphase I/O within a small constant of Sort(N); \
             D-disk striping delivers the 1/D factor"
        );
    }
}
