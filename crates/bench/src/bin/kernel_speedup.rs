//! Kernel speedup bench: radix fast path vs comparison reference.
//!
//! Runs the *real* polyphase sort (run formation + polyphase merge) twice
//! per workload — once with the comparison-based reference kernel, once
//! with the radix + cached-key kernel — on identical data, verifies in-run
//! that the two are observationally identical (byte-identical output,
//! identical block-I/O counters), and prices each run with the suite's
//! virtual cost model (533 MHz Alpha, year-2000 SCSI disk): comparisons at
//! 280 ns, record moves at 120 ns, key-kernel operations at 60 ns, metered
//! blocks through [`DiskModel::service_time`]. The kernels do the same
//! I/O, so the speedup is pure CPU: `8·n` cheap key passes instead of
//! `n·log n` comparisons for run formation, cached-key selects instead of
//! full comparisons in every merge.
//!
//! Emits `BENCH_kernels.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin kernel_speedup -- --selftest
//! ```

use std::time::Instant;

use cluster::CpuModel;
use extsort::{polyphase_sort, ExtSortConfig, SortKernel, SortReport};
use hetsort_bench::{fmt_ratio, fmt_secs, print_table, Args};
use pdm::{Disk, DiskModel, IoSnapshot, ScratchDir};
use workloads::{generate_to_disk, Benchmark, Layout};

const BLOCK_BYTES: usize = 4 * 1024;

struct Run {
    report: SortReport,
    io: IoSnapshot,
    output: Vec<u32>,
    wall_secs: f64,
}

fn run_once(n: u64, bench: Benchmark, cfg: &ExtSortConfig, seed: u64, use_files: bool) -> Run {
    let scratch;
    let disk = if use_files {
        scratch = Some(ScratchDir::new("kernel-bench").expect("scratch dir"));
        Disk::on_files(scratch.as_ref().unwrap().path(), BLOCK_BYTES)
    } else {
        scratch = None;
        Disk::in_memory(BLOCK_BYTES)
    };
    let _keep = scratch;
    generate_to_disk(&disk, "input", bench, seed, Layout::single(n)).expect("generate");
    let before = disk.stats().snapshot();
    let t0 = Instant::now();
    let report = polyphase_sort::<u32>(&disk, "input", "output", "kb", cfg).expect("sort");
    let wall_secs = t0.elapsed().as_secs_f64();
    let io = disk.stats().snapshot().delta(&before);
    let output = disk.read_file::<u32>("output").expect("read output");
    Run {
        report,
        io,
        output,
        wall_secs,
    }
}

/// Virtual CPU seconds for a run: every counter priced by the Alpha model.
fn cpu_secs(r: &SortReport) -> f64 {
    let cpu = CpuModel::alpha_533();
    let moves = r.records * (r.merge_phases as u64 + 1);
    cpu.comparisons(r.comparisons).as_secs()
        + cpu.key_ops(r.key_ops).as_secs()
        + cpu.record_moves(moves).as_secs()
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };
    let tapes = 16;
    let records_per_block = BLOCK_BYTES / 4;
    // Out-of-core by 8x, but never below the streaming minimum of two
    // blocks per tape.
    let mem_records = ((n / 8) as usize).max(2 * tapes * records_per_block);
    let disk_model = DiskModel::scsi_2000();

    let workloads = [
        Benchmark::Uniform,
        Benchmark::Gaussian,
        Benchmark::Zero,
        Benchmark::Staggered,
        Benchmark::ZipfDuplicates,
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut speedup_uniform = 0.0;
    for bench in workloads {
        let run_kernel = |kernel: SortKernel| {
            let cfg = ExtSortConfig::new(mem_records)
                .with_tapes(tapes)
                .with_kernel(kernel);
            run_once(n, bench, &cfg, args.seed, args.files)
        };
        let cmp = run_kernel(SortKernel::Comparison);
        let rad = run_kernel(SortKernel::Radix);

        // The kernel contract, verified in-run: identical bytes, identical
        // metered I/O — the kernels may only differ in CPU cost.
        assert_eq!(rad.io, cmp.io, "{bench}: I/O counters diverged");
        assert_eq!(rad.output, cmp.output, "{bench}: output bytes diverged");
        assert_eq!(rad.report.records, cmp.report.records);
        assert_eq!(rad.report.initial_runs, cmp.report.initial_runs);
        assert_eq!(rad.report.merge_phases, cmp.report.merge_phases);

        let t_io = disk_model.service_time(&cmp.io).as_secs();
        let mut speedup = 0.0;
        for (kernel, run) in [("comparison", &cmp), ("radix", &rad)] {
            let t_cpu = cpu_secs(&run.report);
            let t_total = t_cpu + t_io;
            speedup = (cpu_secs(&cmp.report) + t_io) / t_total;
            rows.push(vec![
                bench.to_string(),
                kernel.to_string(),
                run.report.comparisons.to_string(),
                run.report.key_ops.to_string(),
                fmt_secs(t_cpu),
                fmt_secs(t_total),
                fmt_ratio(speedup),
            ]);
            json_rows.push(format!(
                "    {{\"workload\": \"{}\", \"kernel\": \"{kernel}\", \
                 \"comparisons\": {}, \"key_ops\": {}, \"cpu_secs\": {t_cpu:.6}, \
                 \"io_secs\": {t_io:.6}, \"virtual_secs\": {t_total:.6}, \
                 \"speedup\": {speedup:.4}, \"wall_secs\": {:.4}}}",
                bench.name(),
                run.report.comparisons,
                run.report.key_ops,
                run.wall_secs
            ));
        }
        if bench == Benchmark::Uniform {
            speedup_uniform = speedup;
        }
    }

    print_table(
        &format!("Kernel speedup (n = {n}, M = {mem_records}, T = {tapes})"),
        &[
            "workload",
            "kernel",
            "comparisons",
            "key ops",
            "cpu s",
            "virtual s",
            "speedup",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"kernel_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"mem_records\": {mem_records},\n  \"tapes\": {tapes},\n  \"block_bytes\": {BLOCK_BYTES},\n  \
         \"cpu_model\": \"alpha_533\",\n  \"disk_model\": \"scsi_2000\",\n  \
         \"speedup_uniform\": {speedup_uniform:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("wrote BENCH_kernels.json (uniform u32 speedup: {speedup_uniform:.2}x)");

    if args.selftest {
        assert!(
            speedup_uniform >= 1.5,
            "radix kernel must be >= 1.5x the comparison path on uniform u32 \
             run formation + merge, got {speedup_uniform:.2}x"
        );
        println!("selftest ok");
    }
}
