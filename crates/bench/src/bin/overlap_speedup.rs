//! Overlap bench: staged redistribution+merge vs the streaming
//! exchange-merge.
//!
//! Algorithm 1 stages the exchange on disk: step 4 writes `p` receive
//! files, step 5 reads them back into the final merge — `2·Q/B` block
//! I/Os per node on each side of the barrier between the phases. The
//! streaming path fuses steps 3–5: partition chunks feed per-source
//! buffers backing an incremental loser tree, output goes straight to
//! the sorted file, and credit-based flow control bounds memory. Merge
//! CPU and output I/O overlap the network transfer under the
//! `max(cpu, io)` charging rule.
//!
//! This binary quantifies the saving across the paper's message-size
//! knob (8 … 8 Ki records) on both the homogeneous and the 1-1-4-4
//! heterogeneous configurations, with jitter off so both runs are
//! exactly deterministic. Emits `BENCH_overlap.json`:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin overlap_speedup -- --quick --selftest
//! ```

use hetsort::{run_trial, PerfVector, TrialConfig};
use hetsort_bench::{default_mem, fmt_ratio, fmt_secs, print_table, Args};
use workloads::Benchmark;

const MSG_LADDER: [usize; 4] = [8, 64, 1024, 8192];

struct Cell {
    staged_secs: f64,
    streamed_secs: f64,
    staged_io: u64,
    streamed_io: u64,
}

fn run_pair(args: &Args, n: u64, hardware: &[u64], perf: &PerfVector, msg: usize) -> Cell {
    let make = |streaming: bool| {
        let mut cfg = TrialConfig::new(hardware.to_vec(), perf.clone(), n);
        cfg.bench = Benchmark::Uniform;
        cfg.mem_records = default_mem(n / hardware.len() as u64);
        cfg.tapes = 16;
        cfg.msg_records = msg;
        cfg.seed = args.seed;
        cfg.jitter = 0.0;
        cfg.streaming = streaming;
        run_trial(&cfg).expect("trial")
    };
    let staged = make(false);
    let streamed = make(true);
    assert_eq!(
        staged.balance.sizes, streamed.balance.sizes,
        "same pivots, same data: partition sizes must match"
    );
    Cell {
        staged_secs: staged.time_secs,
        streamed_secs: streamed.time_secs,
        staged_io: staged.total_io_blocks,
        streamed_io: streamed.total_io_blocks,
    }
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };
    let configs: [(&str, Vec<u64>, PerfVector); 2] = [
        ("homogeneous", vec![1, 1, 1, 1], PerfVector::homogeneous(4)),
        ("1-1-4-4", vec![1, 1, 4, 4], PerfVector::paper_1144()),
    ];

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut speedup_1144_1ki = 0.0f64;
    let mut all_io_saved = true;
    for (name, hardware, perf) in &configs {
        for &msg in &MSG_LADDER {
            let cell = run_pair(&args, n, hardware, perf, msg);
            let speedup = cell.staged_secs / cell.streamed_secs;
            let io_save = 100.0 * (1.0 - cell.streamed_io as f64 / cell.staged_io as f64);
            all_io_saved &= cell.streamed_io < cell.staged_io;
            if *name == "1-1-4-4" && msg == 1024 {
                speedup_1144_1ki = speedup;
            }
            rows.push(vec![
                (*name).to_string(),
                msg.to_string(),
                fmt_secs(cell.staged_secs),
                fmt_secs(cell.streamed_secs),
                fmt_ratio(speedup),
                cell.staged_io.to_string(),
                cell.streamed_io.to_string(),
                format!("{io_save:.1}%"),
            ]);
            json_rows.push(format!(
                "    {{\"perf\": \"{name}\", \"msg_records\": {msg}, \
                 \"staged_secs\": {:.6}, \"streamed_secs\": {:.6}, \
                 \"speedup\": {speedup:.4}, \"staged_io_blocks\": {}, \
                 \"streamed_io_blocks\": {}, \"io_saving_pct\": {io_save:.2}}}",
                cell.staged_secs, cell.streamed_secs, cell.staged_io, cell.streamed_io
            ));
        }
    }

    print_table(
        &format!("Streaming exchange-merge vs staged (n = {n}, jitter off)"),
        &[
            "perf",
            "msg",
            "staged s",
            "streamed s",
            "speedup",
            "staged IO",
            "streamed IO",
            "IO saved",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"overlap_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"msg_ladder\": [8, 64, 1024, 8192],\n  \
         \"speedup_1144_1ki\": {speedup_1144_1ki:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_overlap.json", &json).expect("write BENCH_overlap.json");
    println!("wrote BENCH_overlap.json (1-1-4-4 speedup at 1 Ki msgs: {speedup_1144_1ki:.2}x)");

    if args.selftest {
        assert!(
            all_io_saved,
            "streamed path must use strictly fewer block I/Os in every configuration"
        );
        assert!(
            speedup_1144_1ki > 1.0,
            "streaming must beat staged on the 1-1-4-4 cluster at 1 Ki messages, \
             got {speedup_1144_1ki:.3}x"
        );
        println!("selftest ok");
    }
}
