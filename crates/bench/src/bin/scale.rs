//! Simulator-scalability sweep: p = 4 … 1024 nodes in one process.
//!
//! The thread-per-node runtime spends one OS thread per simulated node,
//! so every blocking receive costs a real futex sleep/wake (~µs) and a
//! p = 256 trial wants 256 threads. The event runtime multiplexes every
//! node onto one thread and schedules by virtual time, so a park/resume
//! is two `BTreeSet` operations (~100 ns) and messages are usually in
//! the mailbox before the receiver even asks. This bench puts numbers on
//! three halves of that story:
//!
//! * **Throughput** — a synchronization-dominated stress (rounds of
//!   blocking nearest-neighbor ring exchange plus a barrier, with a
//!   fixed compute charge per round) runs under both schedulers. Each
//!   round parks every node at least once, so the wall-clock ratio is a
//!   direct measurement of the scheduling machinery. `sim_per_wall` —
//!   simulated seconds advanced per wall second — is the figure of
//!   merit, and the headline `events_vs_threads_p64` compares the two
//!   runtimes head-to-head at p = 64.
//! * **Phase shares** — the in-core PSRS sort (communication-dominated
//!   sizing, heterogeneous 1-1-4-4 speed pattern) swept over the same
//!   ladder, reporting the simulated makespan share of the splitter sort
//!   (`pivots` phase, the paper's O(p²) sequential bottleneck) and of
//!   the exchange (`redistribute` phase) as p grows.
//! * **Splitter strategies** — every PSRS width runs under both the flat
//!   root-gather (the paper's step 2) and the two-level √p-grouped
//!   selection; grouped rows also report the per-level split timings
//!   (sample gather, leader sort, boundary exchange — the max across
//!   nodes). Flat is swept only to p = 256: past that the root's
//!   `(Σperf)²` sample sort dominates everything, which is exactly the
//!   curve this sweep exists to show. The `grouped_speedup_p256`
//!   headline is the flat/grouped makespan ratio at p = 256 (events).
//!
//! The thread runtime is only swept to p = 64 (beyond that, spawning
//! hundreds of OS threads per trial measures the host, not the
//! simulator); the event runtime covers the full ladder including
//! p = 1024 (grouped splitter only — the one-process scale target).
//! Both workloads use blocking exchanges only, so the two runtimes must
//! simulate the exact same virtual run — the bench asserts bit-identical
//! makespans at every shared width, for both splitter strategies.
//!
//! Emits `BENCH_scale.json`.
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin scale -- --selftest
//! ```

use std::time::Instant;

use cluster::charge::Work;
use cluster::{run_cluster, ClusterSpec, RuntimeKind, Tag};
use extsort::SortKernel;
use hetsort::incore::PivotStrategy;
use hetsort::{psrs_incore_split, PerfVector, SplitTiming, SplitterStrategy};
use hetsort_bench::{print_table, Args};
use sim::rng::Rng;

/// Cluster widths to sweep. The event runtime covers all of them.
const P_LADDER: [usize; 5] = [4, 16, 64, 256, 1024];
/// Widest cluster the thread runtime is asked to simulate.
const THREADS_MAX_P: usize = 64;
/// Widest cluster the flat splitter is swept to: the p = 1024 row is the
/// grouped one-process scale target, not a flat O(p²) endurance test.
const FLAT_MAX_P: usize = 256;
/// The p at which the two runtimes' throughput is compared head-to-head.
const HEADLINE_P: usize = 64;
/// The p at which flat and grouped splitter selection are compared.
const GROUPED_P: usize = 256;
/// Selftest gate: simulated seconds per wall second, events over threads,
/// at the headline width on the ring stress.
const HEADLINE_GATE: f64 = 10.0;
/// Selftest gates on the splitter-sort share of the makespan at
/// p = `GROUPED_P`: flat must exhibit the O(p²) wall, grouped must not.
const FLAT_SHARE_FLOOR: f64 = 0.60;
const GROUPED_SHARE_CEIL: f64 = 0.25;

/// The paper's heterogeneity pattern tiled across the cluster: speeds
/// 1,1,4,4,1,1,4,4,…
fn perf_pattern(p: usize) -> Vec<u64> {
    (0..p).map(|i| if i % 4 < 2 { 1 } else { 4 }).collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    Ring,
    Psrs,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Ring => "ring",
            Workload::Psrs => "psrs",
        }
    }
}

fn splitter_name(s: SplitterStrategy) -> &'static str {
    if s.is_grouped() {
        "grouped"
    } else {
        "flat"
    }
}

struct Cell {
    workload: Workload,
    p: usize,
    runtime: RuntimeKind,
    splitter: SplitterStrategy,
    /// Records sorted (PSRS) or rounds executed (ring).
    size: u64,
    makespan_sim: f64,
    wall_secs: f64,
    splitter_share: f64,
    alltoall_share: f64,
    /// Per-level split timings (grouped PSRS rows only): the max across
    /// nodes of each stage's virtual seconds.
    split: Option<SplitTiming>,
}

impl Cell {
    fn sim_per_wall(&self) -> f64 {
        self.makespan_sim / self.wall_secs
    }
}

/// Throughput stress: `rounds` iterations of compute charge + blocking
/// nearest-neighbor ring exchange + barrier. Every round forces a park
/// on every node (the barrier alone guarantees it), so wall time is
/// dominated by the scheduler's park/wake path — a futex sleep per
/// blocking receive under threads, a `BTreeSet` insert under events.
fn run_ring_cell(p: usize, runtime: RuntimeKind, rounds: u32, trials: usize, seed: u64) -> Cell {
    let spec = ClusterSpec::new(perf_pattern(p))
        .with_seed(seed)
        .with_runtime(runtime);
    let mut wall_secs = f64::INFINITY;
    let mut report = None;
    for _ in 0..trials.max(1) {
        let t0 = Instant::now();
        let r = run_cluster(&spec, async move |ctx| {
            let right = (ctx.rank + 1) % ctx.p;
            let left = (ctx.rank + ctx.p - 1) % ctx.p;
            let mut sum = 0u64;
            for round in 0..rounds {
                ctx.charger.charge_work(Work::comparisons(1_000));
                ctx.send(right, Tag::user(7), round.to_le_bytes().to_vec());
                let msg = ctx.recv_from(left, Tag::user(7)).await;
                sum += msg.bytes.iter().map(|&b| b as u64).sum::<u64>();
                ctx.barrier().await;
            }
            sum
        });
        wall_secs = wall_secs.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("at least one trial");
    // Every node saw every round's payload from its left neighbor.
    let want: u64 = (0..rounds)
        .map(|r| r.to_le_bytes().iter().map(|&b| b as u64).sum::<u64>())
        .sum();
    for nd in &report.nodes {
        assert_eq!(
            nd.value,
            want,
            "p={p} {}: ring payload lost",
            runtime.name()
        );
    }
    Cell {
        workload: Workload::Ring,
        p,
        runtime,
        splitter: SplitterStrategy::Flat,
        size: rounds as u64,
        makespan_sim: report.makespan.as_secs(),
        wall_secs,
        splitter_share: 0.0,
        alltoall_share: 0.0,
        split: None,
    }
}

/// Phase-share cell: in-core PSRS on `p` nodes under `runtime` with the
/// given splitter strategy. Returns the simulated makespan, the
/// best-of-`trials` wall time, the makespan shares of the splitter-sort
/// and exchange phases, and — for grouped rows — the per-level split
/// timings. Output correctness is asserted inline.
fn run_psrs_cell(
    p: usize,
    runtime: RuntimeKind,
    splitter: SplitterStrategy,
    n_per_node: u64,
    trials: usize,
    seed: u64,
) -> Cell {
    let perf = PerfVector::new(perf_pattern(p));
    let n = perf.padded_size(n_per_node * p as u64);
    let shares = perf.shares(n);
    let spec = ClusterSpec::new(perf_pattern(p))
        .with_seed(seed)
        .with_runtime(runtime);
    let mut wall_secs = f64::INFINITY;
    let mut report = None;
    for _ in 0..trials.max(1) {
        let pv = perf.clone();
        let shares = shares.clone();
        let t0 = Instant::now();
        let r = run_cluster(&spec, async move |ctx| {
            let local: Vec<u32> = (0..shares[ctx.rank]).map(|_| ctx.rng.next_u32()).collect();
            let outcome = psrs_incore_split(
                ctx,
                &pv,
                local,
                PivotStrategy::RegularSampling,
                splitter,
                SortKernel::default(),
            )
            .await;
            (outcome.sorted, outcome.split)
        });
        wall_secs = wall_secs.min(t0.elapsed().as_secs_f64());
        report = Some(r);
    }
    let report = report.expect("at least one trial");

    // Correctness: the concatenated node outputs are the globally sorted
    // sequence of all n generated records.
    let total: usize = report.nodes.iter().map(|nd| nd.value.0.len()).sum();
    assert_eq!(total as u64, n, "p={p} {}: lost records", runtime.name());
    let mut prev = 0u32;
    for nd in &report.nodes {
        for &x in &nd.value.0 {
            assert!(x >= prev, "p={p} {}: output not sorted", runtime.name());
            prev = x;
        }
    }

    // Grouped rows report the slowest node's time in each split stage.
    let split = splitter.is_grouped().then(|| {
        let mut agg = SplitTiming::default();
        for nd in &report.nodes {
            let t = nd.value.1.as_ref().expect("grouped run records timings");
            agg.sample_gather_secs = agg.sample_gather_secs.max(t.sample_gather_secs);
            agg.leader_sort_secs = agg.leader_sort_secs.max(t.leader_sort_secs);
            agg.boundary_exchange_secs = agg.boundary_exchange_secs.max(t.boundary_exchange_secs);
        }
        agg
    });

    // Phase shares of the simulated makespan, taken from the slowest
    // node's span of each phase (what the makespan actually sees).
    let makespan_sim = report.makespan.as_secs();
    let share = |name: &str| {
        report
            .phase_breakdown()
            .iter()
            .find(|ph| ph.name == name)
            .map(|ph| ph.max().as_secs() / makespan_sim)
            .unwrap_or_else(|| panic!("p={p}: phase {name:?} missing"))
    };
    Cell {
        workload: Workload::Psrs,
        p,
        runtime,
        splitter,
        size: n,
        makespan_sim,
        wall_secs,
        splitter_share: share("pivots"),
        alltoall_share: share("redistribute"),
        split,
    }
}

fn main() {
    let args = Args::parse();
    // Communication-dominated sizing with un-clamped regular sampling:
    // `perf[i]·Σperf` samples per node exist only when every share holds
    // at least that many records, i.e. n >= (Σperf)² — per node, 6.25·p
    // under the 1,1,4,4 pattern. Below that the sample clamps to the
    // whole block and the flat-vs-grouped comparison degenerates.
    let n_per_node = |p: usize| -> u64 {
        let unclamped = (25 * p as u64).div_ceil(4);
        if args.paper {
            unclamped.max(16_384)
        } else if args.quick {
            unclamped.max(256)
        } else {
            unclamped.max(2_048)
        }
    };
    // Enough ring rounds that one-time thread-spawn cost stops dominating
    // the throughput cells and the per-round park/wake cost shows.
    let rounds: u32 = if args.paper {
        64
    } else if args.quick {
        16
    } else {
        32
    };
    let trials = args.trials.clamp(1, 5);
    let splitters: Vec<SplitterStrategy> = match args.splitter.as_deref() {
        Some("flat") => vec![SplitterStrategy::Flat],
        Some("grouped") => vec![SplitterStrategy::grouped()],
        _ => vec![SplitterStrategy::Flat, SplitterStrategy::grouped()],
    };

    println!(
        "scale sweep: p in {P_LADDER:?}, threads to p <= {THREADS_MAX_P}, flat splitter to \
         p <= {FLAT_MAX_P}, perf pattern 1,1,4,4,..., {rounds} ring rounds, best of {trials} trials"
    );

    let mut cells: Vec<Cell> = Vec::new();
    for workload in [Workload::Ring, Workload::Psrs] {
        for &p in &P_LADDER {
            for runtime in [RuntimeKind::Threads, RuntimeKind::Events] {
                if runtime == RuntimeKind::Threads && p > THREADS_MAX_P {
                    continue;
                }
                let cell_splitters: &[SplitterStrategy] = match workload {
                    Workload::Ring => &[SplitterStrategy::Flat],
                    Workload::Psrs => &splitters,
                };
                for &splitter in cell_splitters {
                    if workload == Workload::Psrs && !splitter.is_grouped() && p > FLAT_MAX_P {
                        continue;
                    }
                    let cell = match workload {
                        Workload::Ring => run_ring_cell(p, runtime, rounds, trials, args.seed),
                        Workload::Psrs => {
                            run_psrs_cell(p, runtime, splitter, n_per_node(p), trials, args.seed)
                        }
                    };
                    println!(
                        "  {:>4} p={p:>4} {:>7} {:>7}  size={:>8}  sim {:>9.3}s  wall {:>8.4}s  \
                         {:>12.0} sim-s/wall-s  pivots {:>5.1}%  exchange {:>5.1}%",
                        workload.name(),
                        runtime.name(),
                        splitter_name(cell.splitter),
                        cell.size,
                        cell.makespan_sim,
                        cell.wall_secs,
                        cell.sim_per_wall(),
                        100.0 * cell.splitter_share,
                        100.0 * cell.alltoall_share,
                    );
                    cells.push(cell);
                }
            }
        }
    }

    // Blocking exchanges only: both schedulers must simulate the exact
    // same virtual run at every shared width, on both workloads and (for
    // PSRS) both splitter strategies.
    for &p in P_LADDER.iter().filter(|&&p| p <= THREADS_MAX_P) {
        let mut pairs: Vec<(Workload, SplitterStrategy)> =
            vec![(Workload::Ring, SplitterStrategy::Flat)];
        for &s in &splitters {
            pairs.push((Workload::Psrs, s));
        }
        for (workload, splitter) in pairs {
            let find = |rt: RuntimeKind| {
                cells
                    .iter()
                    .find(|c| {
                        c.workload == workload
                            && c.p == p
                            && c.runtime == rt
                            && c.splitter == splitter
                    })
                    .expect("cell present")
            };
            let (t, e) = (find(RuntimeKind::Threads), find(RuntimeKind::Events));
            assert_eq!(
                t.makespan_sim.to_bits(),
                e.makespan_sim.to_bits(),
                "{} {} p={p}: simulated makespan differs across runtimes ({} vs {})",
                workload.name(),
                splitter_name(splitter),
                t.makespan_sim,
                e.makespan_sim
            );
        }
    }

    let throughput = |p: usize, rt: RuntimeKind| {
        cells
            .iter()
            .find(|c| c.workload == Workload::Ring && c.p == p && c.runtime == rt)
            .expect("headline cell")
            .sim_per_wall()
    };
    let headline =
        throughput(HEADLINE_P, RuntimeKind::Events) / throughput(HEADLINE_P, RuntimeKind::Threads);

    let psrs_events = |p: usize, grouped: bool| {
        cells.iter().find(|c| {
            c.workload == Workload::Psrs
                && c.p == p
                && c.runtime == RuntimeKind::Events
                && c.splitter.is_grouped() == grouped
        })
    };
    // Flat/grouped makespan ratio at p = 256 (events): > 1 means the
    // two-level selection beats the O(p²) root sort. Only defined when
    // both strategies ran (no --splitter restriction).
    let grouped_speedup = match (psrs_events(GROUPED_P, false), psrs_events(GROUPED_P, true)) {
        (Some(flat), Some(grouped)) => Some(flat.makespan_sim / grouped.makespan_sim),
        _ => None,
    };

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.workload.name().into(),
                c.p.to_string(),
                c.runtime.name().into(),
                match c.workload {
                    Workload::Psrs => splitter_name(c.splitter).into(),
                    Workload::Ring => "-".to_string(),
                },
                c.size.to_string(),
                format!("{:.3}", c.makespan_sim),
                format!("{:.4}", c.wall_secs),
                format!("{:.0}", c.sim_per_wall()),
                format!("{:.3}", c.splitter_share),
                format!("{:.3}", c.alltoall_share),
            ]
        })
        .collect();
    print_table(
        "Simulator scalability (ring stress + in-core PSRS, perf 1,1,4,4,...)",
        &[
            "workload",
            "p",
            "runtime",
            "splitter",
            "size",
            "sim s",
            "wall s",
            "sim-s/wall-s",
            "pivots share",
            "exchange share",
        ],
        &rows,
    );
    println!(
        "events vs threads at p = {HEADLINE_P} (ring stress): \
         {headline:.1}x simulated-seconds-per-wall-second"
    );
    if let Some(s) = grouped_speedup {
        println!(
            "grouped vs flat splitter at p = {GROUPED_P} (PSRS, events): \
             {s:.2}x simulated makespan"
        );
    }

    let n_headline = cells
        .iter()
        .find(|c| {
            c.workload == Workload::Psrs && c.p == HEADLINE_P && c.runtime == RuntimeKind::Events
        })
        .expect("headline cell")
        .size;
    let row_json = |c: &Cell| {
        let mut s = format!(
            "    {{\"workload\": \"{}\", \"p\": {}, \"runtime\": \"{}\", \"size\": {}, \
             \"makespan_sim_secs\": {:.6}, \"wall_secs\": {:.6}, \"sim_per_wall\": {:.2}",
            c.workload.name(),
            c.p,
            c.runtime.name(),
            c.size,
            c.makespan_sim,
            c.wall_secs,
            c.sim_per_wall(),
        );
        if c.workload == Workload::Psrs {
            s.push_str(&format!(
                ", \"splitter\": \"{}\", \"splitter_share\": {:.4}, \"alltoall_share\": {:.4}",
                splitter_name(c.splitter),
                c.splitter_share,
                c.alltoall_share
            ));
        }
        if let Some(t) = &c.split {
            s.push_str(&format!(
                ", \"split_sample_gather_secs\": {:.6}, \"split_leader_sort_secs\": {:.6}, \
                 \"split_boundary_exchange_secs\": {:.6}",
                t.sample_gather_secs, t.leader_sort_secs, t.boundary_exchange_secs
            ));
        }
        s.push('}');
        s
    };
    let json_rows: Vec<String> = cells.iter().map(row_json).collect();
    let grouped_headline = grouped_speedup
        .map(|s| format!("  \"grouped_speedup_p256\": {s:.4},\n"))
        .unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"n\": {n_headline},\n  \
         \"p_ladder\": [4, 16, 64, 256, 1024],\n  \"threads_max_p\": {THREADS_MAX_P},\n  \
         \"flat_max_p\": {FLAT_MAX_P},\n  \
         \"headline_p\": {HEADLINE_P},\n  \"ring_rounds\": {rounds},\n  \
         \"trials\": {trials},\n  \"events_vs_threads_p64\": {headline:.4},\n\
         {grouped_headline}  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");

    if args.selftest {
        for workload in [Workload::Ring, Workload::Psrs] {
            let events_ps: Vec<usize> = cells
                .iter()
                .filter(|c| {
                    c.workload == workload
                        && c.runtime == RuntimeKind::Events
                        && (workload == Workload::Ring || c.splitter.is_grouped())
                })
                .map(|c| c.p)
                .collect();
            assert_eq!(
                events_ps,
                P_LADDER.to_vec(),
                "{}: event runtime must cover the full ladder including p = 1024",
                workload.name()
            );
        }
        for c in &cells {
            assert!(c.sim_per_wall() > 0.0);
            assert!(
                (0.0..=1.0).contains(&c.splitter_share) && (0.0..=1.0).contains(&c.alltoall_share),
                "p={} {}: phase shares out of range",
                c.p,
                c.runtime.name()
            );
            if let Some(t) = &c.split {
                assert!(
                    t.sample_gather_secs >= 0.0
                        && t.leader_sort_secs >= 0.0
                        && t.boundary_exchange_secs >= 0.0,
                    "p={}: negative split timings",
                    c.p
                );
            }
        }
        assert!(
            headline >= HEADLINE_GATE,
            "event runtime must run >= {HEADLINE_GATE}x more simulated seconds per wall \
             second than threads at p = {HEADLINE_P}, got {headline:.1}x"
        );
        // The whole point of the grouped splitter: at p = 256 the flat
        // root sort eats the makespan, the two-level selection does not.
        if let (Some(flat), Some(grouped)) =
            (psrs_events(GROUPED_P, false), psrs_events(GROUPED_P, true))
        {
            assert!(
                flat.splitter_share >= FLAT_SHARE_FLOOR,
                "flat splitter share at p = {GROUPED_P} should exhibit the O(p²) wall \
                 (>= {FLAT_SHARE_FLOOR}), got {:.3}",
                flat.splitter_share
            );
            assert!(
                grouped.splitter_share < GROUPED_SHARE_CEIL,
                "grouped splitter share at p = {GROUPED_P} must stay < {GROUPED_SHARE_CEIL}, \
                 got {:.3}",
                grouped.splitter_share
            );
            assert!(
                grouped.makespan_sim < flat.makespan_sim,
                "grouped selection must beat flat at p = {GROUPED_P}: {} vs {}",
                grouped.makespan_sim,
                flat.makespan_sim
            );
        }
        println!("selftest ok");
    }
}
