//! Ablation A2: load balance under duplicate keys.
//!
//! §3.1 of the paper: with `d` duplicates of one key, the PSRS upper bound
//! `U = 2·n/p` becomes `U + d` — duplicates only hurt when `d` rivals the
//! per-node share. This binary runs the external sort on the
//! duplicate-heavy inputs (zero, zipf, g-group) plus uniform as a control,
//! reporting `d`, the sublist expansion and whether the `U + d` bound held.

use hetsort::metrics::LoadBalance;
use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{default_mem, fmt_ratio, print_table, Args};
use workloads::{generate_whole, max_duplicate_count, Benchmark};

fn main() {
    let args = Args::parse();
    let n_req: u64 = if args.quick { 20_000 } else { 200_000 };
    let benches = [
        Benchmark::Uniform,
        Benchmark::GGroup,
        Benchmark::ZipfDuplicates,
        Benchmark::Zero,
    ];

    let perf = PerfVector::homogeneous(4);
    let n = perf.padded_size(n_req);
    let mut rows = Vec::new();
    let mut all_ok = true;
    for bench in benches {
        let mut cfg = TrialConfig::new(vec![1, 1, 1, 1], perf.clone(), n);
        cfg.bench = bench;
        cfg.mem_records = default_mem(n);
        cfg.tapes = 8;
        cfg.msg_records = 4096;
        cfg.seed = args.seed;
        cfg.jitter = 0.0;
        cfg.algo = SortAlgo::ExternalPsrs;
        let result = run_trial(&cfg).expect("trial");
        let input = generate_whole(bench, args.seed, &perf.shares(result.n));
        let d = max_duplicate_count(&input);
        let lb: &LoadBalance = &result.balance;
        let within = lb.within_psrs_bound(d);
        all_ok &= within;
        rows.push(vec![
            bench.to_string(),
            result.n.to_string(),
            d.to_string(),
            format!("{:.1}%", 100.0 * d as f64 / result.n as f64),
            lb.max_size().to_string(),
            fmt_ratio(lb.expansion()),
            if within { "yes".into() } else { "NO".into() },
        ]);
    }
    print_table(
        "Ablation A2 — duplicates and the U + d bound (external PSRS, hom. 4 nodes)",
        &[
            "benchmark",
            "n",
            "d (max dup)",
            "d/n",
            "max partition",
            "S(max)",
            "within 2·share + d",
        ],
        &rows,
    );
    println!(
        "note: the zero benchmark has d = n, so the bound is vacuous there — the\n\
         interesting observation (as in the paper's §3.1) is that expansion only\n\
         leaves the few-percent regime when d rivals the per-node share."
    );

    if args.selftest {
        assert!(all_ok, "U + d bound violated somewhere");
        println!("selftest ok: U + d bound held on every duplicate-heavy input");
    }
}
