//! Ablation A1: regular sampling (PSRS) vs random overpartitioning.
//!
//! §3.3 of the paper argues for PSRS because Li & Sevcik's overpartitioning
//! "is still around 1.3 [sublist expansion] even when s is as high as 128",
//! while PSRS stays "below two percents". This binary measures the sublist
//! expansion of both pivot strategies across all benchmark inputs and a
//! sweep of the overpartitioning factor `s`, on both the homogeneous and
//! the `{1,1,4,4}` clusters.

use cluster::{run_cluster, ClusterSpec};
use hetsort::metrics::LoadBalance;
use hetsort::{
    overpartition_incore, psrs_incore_with, OverpartitionConfig, PerfVector, PivotStrategy,
};
use hetsort_bench::{fmt_ratio, print_table, repeat, Args};
use workloads::{generate_block, Benchmark, Layout};

/// Sublist expansion of one in-core PSRS run with the given strategy.
fn psrs_expansion_with(
    perf: &PerfVector,
    bench: Benchmark,
    n: u64,
    seed: u64,
    strategy: PivotStrategy,
) -> f64 {
    let spec = ClusterSpec::new(perf.as_slice().to_vec()).with_seed(seed);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let pv = perf.clone();
    let report = run_cluster(&spec, async move |ctx| {
        let local = generate_block(bench, seed, layouts[ctx.rank]);
        psrs_incore_with(ctx, &pv, local, strategy)
            .await
            .sorted
            .len() as u64
    });
    let sizes: Vec<u64> = report.nodes.iter().map(|n| n.value).collect();
    LoadBalance::new(sizes, perf).expansion()
}

/// Regular-sampling PSRS expansion.
fn psrs_expansion(perf: &PerfVector, bench: Benchmark, n: u64, seed: u64) -> f64 {
    psrs_expansion_with(perf, bench, n, seed, PivotStrategy::RegularSampling)
}

/// Sublist expansion of one in-core overpartitioning run.
fn ovp_expansion(perf: &PerfVector, bench: Benchmark, n: u64, s: u64, seed: u64) -> f64 {
    let spec = ClusterSpec::new(perf.as_slice().to_vec()).with_seed(seed);
    let shares = perf.shares(n);
    let layouts = Layout::cluster(&shares);
    let cfg = OverpartitionConfig::new(perf.clone()).with_oversampling(s);
    let report = run_cluster(&spec, async move |ctx| {
        let local = generate_block(bench, seed, layouts[ctx.rank]);
        overpartition_incore(ctx, &cfg, local)
            .await
            .unwrap()
            .received
    });
    let sizes: Vec<u64> = report.nodes.iter().map(|n| n.value).collect();
    LoadBalance::new(sizes, perf).expansion()
}

fn main() {
    let args = Args::parse();
    let n_req: u64 = if args.quick { 20_000 } else { 200_000 };
    let vectors = [
        ("hom {1,1,1,1}", PerfVector::homogeneous(4)),
        ("het {1,1,4,4}", PerfVector::paper_1144()),
    ];
    let s_values = [1u64, 2, 4, 16, 64];

    for (vec_name, perf) in &vectors {
        let n = perf.padded_size(n_req);
        let mut rows = Vec::new();
        for bench in Benchmark::PAPER_EIGHT {
            let psrs = repeat(args.trials.min(3), args.seed, |seed| {
                psrs_expansion(perf, bench, n, seed)
            });
            let quant = repeat(args.trials.min(3), args.seed, |seed| {
                psrs_expansion_with(perf, bench, n, seed, PivotStrategy::Quantiles)
            });
            let mut row = vec![
                bench.to_string(),
                fmt_ratio(psrs.mean()),
                fmt_ratio(quant.mean()),
            ];
            for &s in &s_values {
                let ovp = repeat(args.trials.min(3), args.seed, |seed| {
                    ovp_expansion(perf, bench, n, s, seed)
                });
                row.push(fmt_ratio(ovp.mean()));
            }
            rows.push(row);
        }
        print_table(
            &format!("Ablation A1 — sublist expansion, {vec_name}, n = {n}"),
            &[
                "benchmark",
                "PSRS",
                "quantile",
                "ovp s=1",
                "ovp s=2",
                "ovp s=4",
                "ovp s=16",
                "ovp s=64",
            ],
            &rows,
        );
    }

    if args.selftest {
        let perf = PerfVector::homogeneous(4);
        let n = perf.padded_size(n_req);
        let psrs = repeat(3, args.seed, |seed| {
            psrs_expansion(&perf, Benchmark::Uniform, n, seed)
        })
        .mean();
        let ovp4 = repeat(3, args.seed, |seed| {
            ovp_expansion(&perf, Benchmark::Uniform, n, 4, seed)
        })
        .mean();
        assert!(
            psrs < ovp4,
            "PSRS expansion ({psrs:.3}) must beat overpartitioning s=4 ({ovp4:.3})"
        );
        assert!(
            psrs < 1.1,
            "PSRS should be within a few percent, got {psrs:.3}"
        );
        // Li & Sevcik's own observation: more sublists help, but the gap
        // to PSRS persists.
        let ovp64 = repeat(3, args.seed, |seed| {
            ovp_expansion(&perf, Benchmark::Uniform, n, 64, seed)
        })
        .mean();
        assert!(ovp64 <= ovp4 * 1.05, "higher s should not hurt");
        // The quantile variant (§3.2) stays within the 2x theorem too.
        let quant = repeat(3, args.seed, |seed| {
            psrs_expansion_with(&perf, Benchmark::Uniform, n, seed, PivotStrategy::Quantiles)
        })
        .mean();
        assert!(quant < 2.0, "quantile expansion {quant:.3} broke the bound");
        println!(
            "selftest ok: PSRS {psrs:.3} / quantile {quant:.3} < ovp(4) {ovp4:.3}; ovp(64) {ovp64:.3}"
        );
    }
}
