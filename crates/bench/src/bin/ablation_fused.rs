//! Ablation A4: fused partition+redistribution (the paper's disk-to-disk
//! remark).
//!
//! Algorithm 1 materializes `p` partition files in step 3 and reads them
//! back in step 4 — `2·Q/B` extra block I/Os per node. The paper notes
//! that "hardware which is able to transfer data from disk to disk … will
//! be more efficient"; the fused path realizes that by streaming the
//! sorted file once and pushing partition chunks straight into the
//! network. This binary quantifies the saving in block I/Os and virtual
//! time across the size ladder.

use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{default_mem, fmt_secs, print_table, repeat, Args};
use workloads::Benchmark;

fn run(args: &Args, n: u64, fused: bool) -> (f64, u64) {
    let mut io = 0u64;
    let time = repeat(args.trials.min(3), args.seed, |seed| {
        let mut cfg = TrialConfig::new(vec![1, 1, 4, 4], PerfVector::paper_1144(), n);
        cfg.bench = Benchmark::Uniform;
        cfg.mem_records = default_mem(n / 4);
        cfg.tapes = 16;
        cfg.msg_records = 8 * 1024;
        cfg.seed = seed;
        cfg.jitter = 0.02;
        cfg.algo = SortAlgo::ExternalPsrs;
        cfg.fused = fused;
        let r = run_trial(&cfg).expect("trial");
        io = r.total_io_blocks;
        r.time_secs
    })
    .mean();
    (time, io)
}

fn main() {
    let args = Args::parse();
    let sizes: Vec<u64> = if args.quick {
        vec![1 << 15, 1 << 16]
    } else if args.paper {
        vec![1 << 21, 1 << 22, 1 << 23, 1 << 24]
    } else {
        vec![1 << 18, 1 << 19, 1 << 20, 1 << 21]
    };

    let mut rows = Vec::new();
    let mut last_saving = (0.0f64, 0.0f64);
    for &n in &sizes {
        let (t_plain, io_plain) = run(&args, n, false);
        let (t_fused, io_fused) = run(&args, n, true);
        let io_save = 100.0 * (1.0 - io_fused as f64 / io_plain as f64);
        let t_save = 100.0 * (1.0 - t_fused / t_plain);
        last_saving = (io_save, t_save);
        rows.push(vec![
            n.to_string(),
            io_plain.to_string(),
            io_fused.to_string(),
            format!("{io_save:.1}%"),
            fmt_secs(t_plain),
            fmt_secs(t_fused),
            format!("{t_save:.1}%"),
        ]);
    }
    print_table(
        "Ablation A4 — Algorithm 1 vs fused partition+redistribution ({1,1,4,4} cluster)",
        &[
            "N",
            "I/Os (paper)",
            "I/Os (fused)",
            "I/O saved",
            "time (paper)",
            "time (fused)",
            "time saved",
        ],
        &rows,
    );
    println!(
        "the paper's step 3 costs 2·Q/B block transfers per node; fusing removes them\n\
         (\"if we have an hardware which is able to transfer data from disk to disk,\n\
         it will be more efficient\" — §4, step 4)"
    );

    if args.selftest {
        let (io_save, t_save) = last_saving;
        assert!(
            io_save > 10.0,
            "fusing should save a visible share of block I/O, got {io_save:.1}%"
        );
        assert!(
            t_save > 0.0,
            "fusing should not be slower, got {t_save:.1}%"
        );
        println!("selftest ok: fused path saves {io_save:.1}% I/O, {t_save:.1}% time");
    }
}
