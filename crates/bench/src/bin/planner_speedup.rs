//! Adaptive-planner bench: fixed merge-worker counts vs the device-driven
//! plan, per disk model.
//!
//! Merges 16 pre-sorted uniform-u32 runs in one pass on each device
//! (`scsi_2000`, `nvme_modern`), once per fixed worker count (1, 2, 4) and
//! once with the adaptive planner choosing (advisory ceiling 4). Every run
//! is priced with the shared-disk contention model: the merge's I/O delta
//! costs [`DiskModel::shared_service_time`] at its worker count, so a wide
//! plan on a queue-depth-1 device pays the queueing it causes — the SCSI
//! cliff the old fixed `--merge-workers` flag walked straight off.
//!
//! The claims the selftest pins:
//!
//! * on `scsi_2000` the adaptive plan is within 5% of the best fixed
//!   configuration and never worse than the sequential merge;
//! * on `nvme_modern` the adaptive plan reaches >= 3x the sequential merge
//!   (it picks the wide plan the device can absorb).
//!
//! Deterministic and host-independent (virtual pricing of metered
//! counters). Emits `BENCH_planner.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin planner_speedup -- --selftest
//! ```

use std::time::Instant;

use cluster::CpuModel;
use extsort::{
    merge_sorted_files_kernel, planned_workers, MergeReport, PipelineConfig, SortKernel,
};
use pdm::{Disk, DiskModel, IoSnapshot};
use workloads::{generate_block, Benchmark, Layout};

use hetsort_bench::{fmt_ratio, fmt_secs, print_table, Args};

const BLOCK_BYTES: usize = 4 * 1024;
const RUNS: usize = 16;
const FIXED_LADDER: [usize; 3] = [1, 2, 4];
const ADVISORY_CAP: usize = 4;

struct Run {
    report: MergeReport,
    io: IoSnapshot,
    out_bytes: Vec<u32>,
    wall_secs: f64,
}

fn run_once(n: u64, model: &DiskModel, workers: usize, seed: u64) -> Run {
    let disk = Disk::in_memory(BLOCK_BYTES).with_model(model.clone());
    let run_len = n / RUNS as u64;
    let names: Vec<String> = (0..RUNS)
        .map(|i| {
            let mut data = generate_block(
                Benchmark::Uniform,
                seed.wrapping_add(i as u64),
                Layout::single(run_len),
            );
            data.sort_unstable();
            let name = format!("run{i}");
            disk.write_file(&name, &data).expect("write run");
            name
        })
        .collect();
    let pipeline = PipelineConfig::off().with_merge_workers(workers);
    let before = disk.stats().snapshot();
    let t0 = Instant::now();
    // The comparison kernel is the one the cost model was calibrated on
    // (and the parmerge headline's convention): every select is a priced
    // comparison, so dividing the tree across workers shows through.
    let report = merge_sorted_files_kernel::<u32>(
        &disk,
        &names,
        "output",
        &pipeline,
        SortKernel::Comparison,
    )
    .expect("merge");
    let wall_secs = t0.elapsed().as_secs_f64();
    let io = disk.stats().snapshot().delta(&before);
    let out_bytes = disk.read_file::<u32>("output").expect("read output");
    Run {
        report,
        io,
        out_bytes,
        wall_secs,
    }
}

/// The worker count the adaptive planner picks for this merge on `model`.
fn adaptive_choice(n: u64, model: &DiskModel) -> usize {
    let disk = Disk::in_memory(BLOCK_BYTES).with_model(model.clone());
    let advisory = PipelineConfig::off().with_advisory_merge_workers(ADVISORY_CAP);
    planned_workers::<u32>(&disk, &advisory, RUNS, n, SortKernel::Comparison)
}

/// Contention-priced virtual seconds: the baseline's tree-select CPU
/// divides across the workers, the output moves stay serial, and the run's
/// metered I/O is billed at `workers` shared request streams — exactly the
/// cluster charger's rule for a parallel merge.
fn virtual_secs(baseline: &MergeReport, run: &Run, workers: usize, model: &DiskModel) -> f64 {
    let cpu = CpuModel::alpha_533();
    let w = workers.max(1) as u64;
    let t_select = cpu.comparisons(baseline.comparisons.div_ceil(w)).as_secs()
        + cpu.key_ops(baseline.key_ops.div_ceil(w)).as_secs();
    let t_moves = cpu.record_moves(baseline.records).as_secs();
    let t_io = model.shared_service_time(&run.io, workers.max(1)).as_secs();
    if workers <= 1 {
        t_select + t_moves + t_io
    } else {
        (t_select + t_moves).max(t_io)
    }
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };

    let devices = [
        ("scsi_2000", DiskModel::scsi_2000()),
        ("nvme_modern", DiskModel::nvme_modern()),
    ];
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut scsi_adaptive_vs_best = 0.0;
    let mut scsi_adaptive_vs_seq = 0.0;
    let mut nvme_adaptive_speedup = 0.0;

    for (device, model) in &devices {
        let base = run_once(n, model, 1, args.seed);
        let t_seq = virtual_secs(&base.report, &base, 1, model);
        let mut fixed_times = Vec::new();
        let mut emit = |plan: &str, workers: usize, run: &Run, t: f64| {
            let speedup = t_seq / t;
            rows.push(vec![
                device.to_string(),
                plan.to_string(),
                workers.to_string(),
                fmt_secs(t),
                fmt_ratio(speedup),
                format!("{:.3}", run.wall_secs),
            ]);
            json_rows.push(format!(
                "    {{\"device\": \"{device}\", \"plan\": \"{plan}\", \"workers\": {workers}, \
                 \"virtual_secs\": {t:.6}, \"speedup\": {speedup:.4}, \"wall_secs\": {:.4}}}",
                run.wall_secs
            ));
            speedup
        };

        for &w in &FIXED_LADDER {
            let run = if w == 1 {
                None
            } else {
                Some(run_once(n, model, w, args.seed))
            };
            let run = run.as_ref().unwrap_or(&base);
            assert_eq!(
                run.out_bytes, base.out_bytes,
                "{device}, workers {w}: output bytes diverged"
            );
            let t = virtual_secs(&base.report, run, w, model);
            fixed_times.push(t);
            emit("fixed", w, run, t);
        }

        let chosen = adaptive_choice(n, model);
        let run = if chosen == 1 {
            None
        } else {
            Some(run_once(n, model, chosen, args.seed))
        };
        let run = run.as_ref().unwrap_or(&base);
        assert_eq!(
            run.out_bytes, base.out_bytes,
            "{device}, adaptive ({chosen} workers): output bytes diverged"
        );
        let t_ada = virtual_secs(&base.report, run, chosen, model);
        let speedup = emit("adaptive", chosen, run, t_ada);
        let best_fixed = fixed_times.iter().cloned().fold(f64::INFINITY, f64::min);
        if *device == "scsi_2000" {
            scsi_adaptive_vs_best = t_ada / best_fixed;
            scsi_adaptive_vs_seq = t_ada / t_seq;
        } else {
            nvme_adaptive_speedup = speedup;
        }
    }

    print_table(
        &format!("Adaptive merge planner (n = {n}, {RUNS} runs, block = {BLOCK_BYTES}, contention-priced)"),
        &["device", "plan", "workers", "virtual s", "speedup", "wall s"],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"planner_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"runs\": {RUNS},\n  \"block_bytes\": {BLOCK_BYTES},\n  \
         \"fixed_ladder\": [1, 2, 4],\n  \"advisory_cap\": {ADVISORY_CAP},\n  \
         \"cpu_model\": \"alpha_533\",\n  \"pricing\": \"shared_service_time\",\n  \
         \"devices\": [\"scsi_2000\", \"nvme_modern\"],\n  \
         \"scsi_adaptive_vs_best_fixed\": {scsi_adaptive_vs_best:.4},\n  \
         \"scsi_adaptive_vs_sequential\": {scsi_adaptive_vs_seq:.4},\n  \
         \"nvme_adaptive_speedup\": {nvme_adaptive_speedup:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    println!(
        "wrote BENCH_planner.json (scsi adaptive/best {scsi_adaptive_vs_best:.3}, \
         nvme adaptive speedup {nvme_adaptive_speedup:.2}x)"
    );

    if args.selftest {
        assert!(
            scsi_adaptive_vs_best <= 1.05,
            "scsi adaptive plan must be within 5% of the best fixed config, \
             got {scsi_adaptive_vs_best:.3}x"
        );
        assert!(
            scsi_adaptive_vs_seq <= 1.0 + 1e-9,
            "scsi adaptive plan must never be worse than sequential, \
             got {scsi_adaptive_vs_seq:.3}x"
        );
        // At CI's --quick scale the splitter probes are a bigger fraction of
        // the (tiny) merge, so the wide plan clears a lower bar; the full-
        // size run must clear the headline 3x.
        let nvme_floor = if args.quick { 2.0 } else { 3.0 };
        assert!(
            nvme_adaptive_speedup >= nvme_floor,
            "nvme adaptive plan must reach >= {nvme_floor}x sequential, \
             got {nvme_adaptive_speedup:.2}x"
        );
        println!("selftest ok");
    }
}
