//! Parallel-merge speedup bench: sequential loser tree vs range-partitioned
//! merge workers.
//!
//! Merges 16 pre-sorted uniform-u32 runs in one pass with `merge_workers`
//! at 1, 2 and 4, under both sort kernels, checks the runs are
//! observationally identical (byte-identical output, identical non-seek
//! block I/O — the parallel path may only add metered seeking reads for
//! splitter probes and boundary prefills), and prices each run with the
//! suite's virtual cost model exactly like the table reproductions.
//!
//! Pricing: the tree-select CPU (the sequential baseline's counted selects)
//! divides by the worker count; the output record moves stay serial (one
//! writer); workers > 1 overlap the CPU with the transfers (`max(cpu, io)`,
//! the same rule `cluster::Charger` applies). The headline numbers use the
//! modern-NVMe disk model: on the paper's year-2000 SCSI model this merge
//! is I/O-bound, so parallel select CPU cannot show through — the SCSI
//! pricing is emitted alongside for that context, both dedicated
//! (`virtual_secs_scsi`) and contention-priced at `workers` shared request
//! streams (`virtual_secs_scsi_shared`, the queue-depth-1 cliff the
//! adaptive planner exists to avoid). Deterministic and
//! host-independent: the CI container has one core, so wall-clock parallel
//! speedup would measure the host, not the algorithm.
//!
//! Emits `BENCH_parmerge.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin parmerge_speedup -- --selftest
//! ```

use std::time::Instant;

use cluster::CpuModel;
use extsort::{merge_sorted_files_kernel, MergeReport, PipelineConfig, SortKernel};
use pdm::{Disk, DiskModel, IoSnapshot, ScratchDir};
use workloads::{generate_block, Benchmark, Layout};

use hetsort_bench::{fmt_ratio, fmt_secs, print_table, Args};

const BLOCK_BYTES: usize = 4 * 1024;
const RUNS: usize = 16;
const WORKER_LADDER: [usize; 3] = [1, 2, 4];

struct Run {
    report: MergeReport,
    io: IoSnapshot,
    out_bytes: Vec<u32>,
    wall_secs: f64,
}

fn run_once(n: u64, kernel: SortKernel, workers: usize, seed: u64, use_files: bool) -> Run {
    let scratch;
    let disk = if use_files {
        scratch = Some(ScratchDir::new("parmerge-bench").expect("scratch dir"));
        Disk::on_files(scratch.as_ref().unwrap().path(), BLOCK_BYTES)
    } else {
        scratch = None;
        Disk::in_memory(BLOCK_BYTES)
    };
    let _keep = scratch;
    let run_len = n / RUNS as u64;
    let names: Vec<String> = (0..RUNS)
        .map(|i| {
            let mut data = generate_block(
                Benchmark::Uniform,
                seed.wrapping_add(i as u64),
                Layout::single(run_len),
            );
            data.sort_unstable();
            let name = format!("run{i}");
            disk.write_file(&name, &data).expect("write run");
            name
        })
        .collect();
    let pipeline = PipelineConfig::off().with_merge_workers(workers);
    let before = disk.stats().snapshot();
    let t0 = Instant::now();
    let report = merge_sorted_files_kernel::<u32>(&disk, &names, "output", &pipeline, kernel)
        .expect("merge");
    let wall_secs = t0.elapsed().as_secs_f64();
    let io = disk.stats().snapshot().delta(&before);
    let out_bytes = disk.read_file::<u32>("output").expect("read output");
    Run {
        report,
        io,
        out_bytes,
        wall_secs,
    }
}

/// The streaming I/O net of seeking reads (probes/prefills are legitimately
/// extra on the parallel path; everything else must match exactly).
fn non_seek(io: &IoSnapshot) -> (u64, u64, u64, u64, u64) {
    (
        io.blocks_read - io.random_reads,
        io.bytes_read - io.seek_bytes,
        io.blocks_written,
        io.bytes_written,
        io.files_created,
    )
}

/// Virtual seconds for one run: tree selects (the *baseline's* counts — the
/// per-worker trees count differently, the model divides the sequential
/// work) spread over `workers`, serial output moves, and the run's own
/// metered I/O (so the parallel rows pay for their probe seeks).
fn virtual_secs(baseline: &MergeReport, run: &Run, workers: usize, disk_model: &DiskModel) -> f64 {
    let cpu = CpuModel::alpha_533();
    let w = workers.max(1) as u64;
    let t_select = cpu.comparisons(baseline.comparisons.div_ceil(w)).as_secs()
        + cpu.key_ops(baseline.key_ops.div_ceil(w)).as_secs();
    let t_moves = cpu.record_moves(baseline.records).as_secs();
    let t_io = disk_model.service_time(&run.io).as_secs();
    if workers <= 1 {
        t_select + t_moves + t_io
    } else {
        (t_select + t_moves).max(t_io)
    }
}

/// Like [`virtual_secs`] but with the workers *sharing* the disk: the I/O
/// delta is priced by the contention model at `workers` request streams
/// ([`DiskModel::shared_service_time`]), which is how the cluster charger
/// now bills a parallel merge. On SCSI (queue depth 1) this is the honest
/// price of the cliff; on one stream it equals the dedicated price.
fn virtual_secs_shared(
    baseline: &MergeReport,
    run: &Run,
    workers: usize,
    disk_model: &DiskModel,
) -> f64 {
    let cpu = CpuModel::alpha_533();
    let w = workers.max(1) as u64;
    let t_select = cpu.comparisons(baseline.comparisons.div_ceil(w)).as_secs()
        + cpu.key_ops(baseline.key_ops.div_ceil(w)).as_secs();
    let t_moves = cpu.record_moves(baseline.records).as_secs();
    let t_io = disk_model
        .shared_service_time(&run.io, workers.max(1))
        .as_secs();
    if workers <= 1 {
        t_select + t_moves + t_io
    } else {
        (t_select + t_moves).max(t_io)
    }
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 23
    } else if args.quick {
        1 << 16
    } else {
        1 << 20
    };
    let nvme = DiskModel::nvme_modern();
    let scsi = DiskModel::scsi_2000();

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut speedup_at_4 = 0.0;
    for kernel in [SortKernel::Comparison, SortKernel::Radix] {
        let base = run_once(n, kernel, 1, args.seed, args.files);
        let t_base = virtual_secs(&base.report, &base, 1, &nvme);
        for &w in &WORKER_LADDER {
            let run = if w == 1 {
                None
            } else {
                Some(run_once(n, kernel, w, args.seed, args.files))
            };
            let run = run.as_ref().unwrap_or(&base);
            // The contract: range partitioning changes nothing observable
            // but seeking reads.
            assert_eq!(
                run.out_bytes, base.out_bytes,
                "{kernel:?}, workers {w}: output bytes diverged"
            );
            assert_eq!(
                non_seek(&run.io),
                non_seek(&base.io),
                "{kernel:?}, workers {w}: non-seek I/O diverged"
            );
            assert_eq!(run.report.records, base.report.records);
            let t = virtual_secs(&base.report, run, w, &nvme);
            let t_scsi = virtual_secs(&base.report, run, w, &scsi);
            let t_scsi_shared = virtual_secs_shared(&base.report, run, w, &scsi);
            let speedup = t_base / t;
            if w == 4 && kernel == SortKernel::Comparison {
                speedup_at_4 = speedup;
            }
            let probe_reads = run.io.random_reads - base.io.random_reads;
            rows.push(vec![
                kernel.name().to_string(),
                w.to_string(),
                fmt_secs(t),
                fmt_secs(t_scsi),
                fmt_secs(t_scsi_shared),
                fmt_ratio(speedup),
                probe_reads.to_string(),
                format!("{:.3}", run.wall_secs),
            ]);
            json_rows.push(format!(
                "    {{\"kernel\": \"{}\", \"workers\": {w}, \"virtual_secs\": {t:.6}, \
                 \"virtual_secs_scsi\": {t_scsi:.6}, \
                 \"virtual_secs_scsi_shared\": {t_scsi_shared:.6}, \"speedup\": {speedup:.4}, \
                 \"probe_random_reads\": {probe_reads}, \"wall_secs\": {:.4}}}",
                kernel.name(),
                run.wall_secs
            ));
        }
    }

    print_table(
        &format!("Parallel-merge speedup (n = {n}, {RUNS} runs, block = {BLOCK_BYTES})"),
        &[
            "kernel",
            "workers",
            "virtual s",
            "scsi s",
            "scsi shared s",
            "speedup",
            "probe rds",
            "wall s",
        ],
        &rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"parmerge_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"runs\": {RUNS},\n  \"block_bytes\": {BLOCK_BYTES},\n  \
         \"worker_ladder\": [1, 2, 4],\n  \
         \"cpu_model\": \"alpha_533\",\n  \"disk_model\": \"nvme_modern\",\n  \
         \"context_disk_model\": \"scsi_2000\",\n  \
         \"speedup_4_workers\": {speedup_at_4:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_parmerge.json", &json).expect("write BENCH_parmerge.json");
    println!("wrote BENCH_parmerge.json (speedup at 4 workers: {speedup_at_4:.2}x)");

    if args.selftest {
        assert!(
            speedup_at_4 >= 2.0,
            "parallel merge at 4 workers must be >= 2x sequential, got {speedup_at_4:.2}x"
        );
        println!("selftest ok");
    }
}
