//! Table 3 reproduction: parallel external PSRS on the loaded cluster.
//!
//! The paper sorts 2²⁴ integers on its 4-node cluster (two nodes loaded to
//! be 4× slower) three ways:
//!
//! 1. perf declared `{1,1,1,1}` (equal split despite the load), Fast-Ethernet;
//! 2. perf declared `{1,1,4,4}` (correct split), Fast-Ethernet;
//! 3. perf declared `{1,1,4,4}`, Myrinet;
//!
//! and reports execution time, deviation, mean/max final partition size and
//! the sublist expansion `S(max)`; for the heterogeneous rows the mean/max
//! are over the two *fastest* nodes, as in the paper. It then compares with
//! the sequential times (gain ≈ 3 homogeneous; 1.37 vs the fastest node and
//! 6.13 vs the slowest for the heterogeneous run).

use cluster::NetworkModel;
use hetsort::{run_trial, PerfVector, SortAlgo, TrialConfig};
use hetsort_bench::{
    default_mem, fmt_ratio, fmt_secs, print_table, repeat, sequential_polyphase_trial, Args,
};
use sim::Summary;
use workloads::Benchmark;

struct Row {
    label: &'static str,
    n: u64,
    time: Summary,
    mean_size: f64,
    max_size: u64,
    s_max: f64,
    /// Per-phase duration on the slowest node, straight from
    /// `TrialResult::phase_breakdown` (no differencing of cumulative ends).
    phase_durs: Vec<(String, f64)>,
}

fn run_config(args: &Args, declared: PerfVector, net: NetworkModel, label: &'static str) -> Row {
    let hardware = vec![1u64, 1, 4, 4]; // the loaded cluster, always
    let n_req = args.table3_n();
    let mut mean_size = 0.0;
    let mut max_size = 0u64;
    let mut s_max = 0.0;
    let mut n_actual = 0u64;
    let mut phase_durs = Vec::new();
    let time = repeat(args.trials, args.seed, |seed| {
        let mut cfg = TrialConfig::new(hardware.clone(), declared.clone(), n_req);
        cfg.bench = Benchmark::Uniform;
        cfg.mem_records = default_mem(n_req);
        cfg.tapes = 16;
        cfg.msg_records = 8 * 1024; // 32 Kb messages, as in the paper
        cfg.net = net.clone();
        cfg.seed = seed;
        cfg.jitter = 0.03;
        cfg.algo = SortAlgo::ExternalPsrs;
        cfg.storage = if args.files {
            cluster::StorageKind::Files
        } else {
            cluster::StorageKind::Memory
        };
        let result = run_trial(&cfg).expect("trial");
        n_actual = result.n;
        // The paper's het rows report mean/max/S over the two fastest
        // nodes (the ones holding the large partitions).
        let fast: Vec<usize> = if declared.is_homogeneous() {
            (0..4).collect()
        } else {
            vec![2, 3]
        };
        mean_size = result.balance.mean_size_of(&fast);
        max_size = result.balance.max_size_of(&fast);
        s_max = result.balance.expansion_of(&fast);
        phase_durs = result
            .phase_breakdown
            .iter()
            .map(|pb| (pb.name.to_string(), pb.max().as_secs()))
            .collect();
        result.time_secs
    });
    Row {
        label,
        n: n_actual,
        time,
        mean_size,
        max_size,
        s_max,
        phase_durs,
    }
}

fn main() {
    let args = Args::parse();
    let rows = [
        run_config(
            &args,
            PerfVector::homogeneous(4),
            NetworkModel::fast_ethernet(),
            "perf {1,1,1,1}; Fast-Ethernet",
        ),
        run_config(
            &args,
            PerfVector::paper_1144(),
            NetworkModel::fast_ethernet(),
            "perf {1,1,4,4}; Fast-Ethernet",
        ),
        run_config(
            &args,
            PerfVector::paper_1144(),
            NetworkModel::myrinet(),
            "perf {1,1,4,4}; Myrinet",
        ),
    ];

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.n.to_string(),
                fmt_secs(r.time.mean()),
                fmt_secs(r.time.stddev()),
                format!("{:.1}", r.mean_size),
                r.max_size.to_string(),
                fmt_ratio(r.s_max),
            ]
        })
        .collect();
    print_table(
        "Table 3 — external PSRS on the loaded cluster (32 Kb messages, 15 intermediate files)",
        &[
            "Configuration",
            "Input size",
            "Exe Time (s)",
            "Deviation",
            "Mean",
            "Max",
            "S(max)",
        ],
        &table,
    );

    // Phase breakdown (per-phase duration on the slowest node).
    let phase_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.label.to_string()];
            for (name, dur) in &r.phase_durs {
                row.push(format!("{name} {dur:.2}s"));
            }
            row
        })
        .collect();
    print_table(
        "Phase durations (slowest node per phase)",
        &["Configuration", "1", "2", "3", "4", "5"],
        &phase_rows,
    );

    // Gains vs the sequential sorts (the paper's closing analysis).
    let n = args.table3_n();
    let mem = default_mem(n);
    let (seq_fast, _) = sequential_polyphase_trial(
        n / 4,
        mem,
        16,
        1.0,
        args.seed,
        0.0,
        args.files,
        Benchmark::Uniform,
    );
    // A sequential run of the whole input on the fastest / slowest node.
    let (seq_fast_full, _) = sequential_polyphase_trial(
        n,
        mem,
        16,
        1.0,
        args.seed,
        0.0,
        args.files,
        Benchmark::Uniform,
    );
    let (seq_slow_full, _) = sequential_polyphase_trial(
        n,
        mem,
        16,
        4.0,
        args.seed,
        0.0,
        args.files,
        Benchmark::Uniform,
    );
    let hom = rows[0].time.mean();
    let het = rows[1].time.mean();
    println!("sequential n/4 on a fast node:   {:.2}s", seq_fast);
    println!("sequential n on the fast node:   {:.2}s", seq_fast_full);
    println!("sequential n on a loaded node:   {:.2}s", seq_slow_full);
    println!(
        "gain of het vs best sequential:  {:.2}  (paper: 1.37)",
        seq_fast_full / het
    );
    println!(
        "gain of het vs worst sequential: {:.2}  (paper: 6.13)",
        seq_slow_full / het
    );
    println!(
        "het vs hom-declared speedup:     {:.2}  (paper: 303.94/155.41 = 1.96)",
        hom / het
    );

    if args.selftest {
        assert!(
            het < hom,
            "declared {{1,1,4,4}} ({het:.2}s) must beat {{1,1,1,1}} ({hom:.2}s)"
        );
        let hom_vs_het = hom / het;
        assert!(
            (1.2..3.0).contains(&hom_vs_het),
            "expected ~2x improvement, got {hom_vs_het:.2}"
        );
        let myr = rows[2].time.mean();
        let net_ratio = het / myr;
        assert!(
            (0.85..1.5).contains(&net_ratio),
            "Myrinet should not change the picture (paper: 155.41 vs 155.43); got {net_ratio:.2}"
        );
        for r in &rows {
            assert!(
                r.s_max < 1.5,
                "{}: S(max) {} should be near 1",
                r.label,
                r.s_max
            );
        }
        assert!(seq_slow_full / het > seq_fast_full / het);
        println!("selftest ok: Table 3 shape reproduced");
    }
}
