//! Wall-clock engine bench: kernel × codec × I/O-backend grid at GB scale.
//!
//! Unlike the table reproductions (which price counted work through the
//! paper's Alpha/SCSI cost model), this bench measures **host wall time**
//! on real files: it generates a multi-hundred-MB input once per cell,
//! sorts it with the full pipelined polyphase engine, and reports
//! sustained records/sec and MB/s for every combination of
//!
//! * in-core kernel — LSD radix vs the ips4o-style in-place partitioner,
//! * block codec — copying vs zero-copy borrowed views,
//! * I/O backend — serial worker threads vs batched multi-request
//!   submission,
//!
//! plus an external baseline ("read the whole file, `sort_unstable`,
//! write it back") for scale. The reference cell is the engine as of the
//! pipelined-execution PR: radix kernel, copying codec, serial backend.
//! The headline is the fully-upgraded cell (ips4o + zerocopy + batched)
//! against that reference.
//!
//! Every cell must stay observationally correct: the output fingerprint
//! must equal the input's and the file must be sorted; with a total-order
//! record type that makes all cell outputs byte-identical.
//!
//! Emits `BENCH_wallclock.json` in the working directory:
//!
//! ```sh
//! cargo run --release -p hetsort-bench --bin wallclock_speedup -- --selftest
//! ```
//!
//! `--quick` shrinks n for CI (the ≥1.5× speedup gate only applies at the
//! full n ≥ 2²⁶ scale; small inputs are dominated by constant overheads).

use std::time::Instant;

use extsort::{
    fingerprint_file, is_sorted_file, polyphase_sort, ExtSortConfig, Fingerprint, PipelineConfig,
    SortKernel,
};
use hetsort_bench::{print_table, Args};
use pdm::{Codec, Disk, DiskModel, IoBackend, ScratchDir};
use workloads::{generate_to_disk, Benchmark, Layout};

const BLOCK_BYTES: usize = 256 * 1024;
const TAPES: usize = 8;
const SORT_WORKERS: usize = 4;
const PREFETCH_DEPTH: usize = 8;
/// Headline gate: the fully-upgraded cell vs the reference cell.
const SPEEDUP_GATE: f64 = 1.5;
/// The gate only applies at GB scale; below this the run is overhead-bound.
const GATE_MIN_N: u64 = 1 << 26;

struct Cell {
    kernel: SortKernel,
    codec: Codec,
    backend: IoBackend,
    wall_secs: f64,
    fingerprint: Fingerprint,
}

fn fresh_disk(n: u64, seed: u64, codec: Codec, backend: IoBackend) -> (ScratchDir, Disk) {
    let scratch = ScratchDir::new("wallclock-bench").expect("scratch dir");
    let disk = Disk::on_files(scratch.path(), BLOCK_BYTES)
        // A modern-NVMe service model: irrelevant to wall time, but the
        // merge planner consults it before accepting advisory merge
        // workers (seek-dominated models veto them).
        .with_model(DiskModel::nvme_modern())
        .with_codec(codec)
        .with_io_backend(backend);
    generate_to_disk(&disk, "input", Benchmark::Uniform, seed, Layout::single(n))
        .expect("generate");
    (scratch, disk)
}

fn run_cell(n: u64, mem_records: usize, seed: u64, cell: (SortKernel, Codec, IoBackend)) -> Cell {
    let (kernel, codec, backend) = cell;
    let (_scratch, disk) = fresh_disk(n, seed, codec, backend);
    let cfg = ExtSortConfig::new(mem_records)
        .with_tapes(TAPES)
        .with_kernel(kernel)
        .with_pipeline(
            PipelineConfig::with_workers(SORT_WORKERS)
                .with_prefetch_blocks(PREFETCH_DEPTH)
                .with_advisory_merge_workers(SORT_WORKERS),
        );
    let t0 = Instant::now();
    let report = polyphase_sort::<u32>(&disk, "input", "output", "wc", &cfg).expect("sort");
    let wall_secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.records, n, "{}: record count", kernel.name());
    assert!(
        is_sorted_file::<u32>(&disk, "output").expect("scan"),
        "{}/{}/{}: output not sorted",
        kernel.name(),
        codec.name(),
        backend.name()
    );
    let fingerprint = fingerprint_file::<u32>(&disk, "output").expect("fingerprint");
    Cell {
        kernel,
        codec,
        backend,
        wall_secs,
        fingerprint,
    }
}

/// External baseline: read everything, `sort_unstable`, write everything.
/// In-core (cheats the memory budget), single-threaded, no pipeline — the
/// "what a shell `sort` of a binary file could hope for" scale marker.
fn run_std_baseline(n: u64, seed: u64) -> (f64, Fingerprint) {
    let (_scratch, disk) = fresh_disk(n, seed, Codec::default(), IoBackend::default());
    let t0 = Instant::now();
    let mut data = disk.read_file::<u32>("input").expect("read");
    data.sort_unstable();
    disk.write_file("output", &data).expect("write");
    let wall = t0.elapsed().as_secs_f64();
    drop(data);
    let fp = fingerprint_file::<u32>(&disk, "output").expect("fingerprint");
    (wall, fp)
}

fn main() {
    let args = Args::parse();
    let n: u64 = if args.paper {
        1 << 27
    } else if args.quick {
        1 << 20
    } else {
        1 << 26
    };
    // Out-of-core by 8× so polyphase genuinely merges, but enough for the
    // streaming minimum of two blocks per tape.
    let records_per_block = BLOCK_BYTES / 4;
    let mem_records = ((n / 8) as usize).max(2 * TAPES * records_per_block);
    let mb = n as f64 * 4.0 / 1e6;

    println!(
        "wallclock grid: n = {n} ({mb:.0} MB), M = {mem_records}, T = {TAPES}, \
         block = {BLOCK_BYTES}, workers = {SORT_WORKERS}, depth = {PREFETCH_DEPTH}"
    );

    let (std_wall, std_fp) = run_std_baseline(n, args.seed);

    let mut cells = Vec::new();
    for kernel in [SortKernel::Radix, SortKernel::Ips4o] {
        for codec in [Codec::Copying, Codec::ZeroCopy] {
            for backend in [IoBackend::Serial, IoBackend::Batched] {
                let cell = run_cell(n, mem_records, args.seed, (kernel, codec, backend));
                assert_eq!(
                    cell.fingerprint,
                    std_fp,
                    "{}/{}/{}: output differs from std baseline",
                    kernel.name(),
                    codec.name(),
                    backend.name()
                );
                println!(
                    "  {:>6} {:>8} {:>7}  {:8.3}s  {:>12.0} rec/s",
                    kernel.name(),
                    codec.name(),
                    backend.name(),
                    cell.wall_secs,
                    n as f64 / cell.wall_secs
                );
                cells.push(cell);
            }
        }
    }

    let find = |k: SortKernel, c: Codec, b: IoBackend| {
        cells
            .iter()
            .find(|cell| cell.kernel == k && cell.codec == c && cell.backend == b)
            .expect("cell present")
    };
    let reference = find(SortKernel::Radix, Codec::Copying, IoBackend::Serial);
    let upgraded = find(SortKernel::Ips4o, Codec::ZeroCopy, IoBackend::Batched);
    let speedup = reference.wall_secs / upgraded.wall_secs;

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    {
        let rps = n as f64 / std_wall;
        rows.push(vec![
            "std_slice_sort".into(),
            "-".into(),
            "-".into(),
            format!("{std_wall:.3}"),
            format!("{rps:.0}"),
            format!("{:.1}", mb / std_wall),
            "-".into(),
        ]);
        json_rows.push(format!(
            "    {{\"kernel\": \"std_slice_sort\", \"codec\": null, \"io_backend\": null, \
             \"wall_secs\": {std_wall:.4}, \"records_per_sec\": {rps:.1}, \
             \"mb_per_sec\": {:.2}}}",
            mb / std_wall
        ));
    }
    for cell in &cells {
        let rps = n as f64 / cell.wall_secs;
        rows.push(vec![
            cell.kernel.name().into(),
            cell.codec.name().into(),
            cell.backend.name().into(),
            format!("{:.3}", cell.wall_secs),
            format!("{rps:.0}"),
            format!("{:.1}", mb / cell.wall_secs),
            format!("{:.2}", reference.wall_secs / cell.wall_secs),
        ]);
        json_rows.push(format!(
            "    {{\"kernel\": \"{}\", \"codec\": \"{}\", \"io_backend\": \"{}\", \
             \"wall_secs\": {:.4}, \"records_per_sec\": {rps:.1}, \"mb_per_sec\": {:.2}}}",
            cell.kernel.name(),
            cell.codec.name(),
            cell.backend.name(),
            cell.wall_secs,
            mb / cell.wall_secs
        ));
    }

    print_table(
        &format!("Wall-clock grid (n = {n}, {mb:.0} MB, real files)"),
        &[
            "kernel", "codec", "backend", "wall s", "rec/s", "MB/s", "vs ref",
        ],
        &rows,
    );
    println!("upgraded (ips4o/zerocopy/batched) vs reference (radix/copy/serial): {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"wallclock_speedup\",\n  \"n\": {n},\n  \"record_bytes\": 4,\n  \
         \"mem_records\": {mem_records},\n  \"tapes\": {TAPES},\n  \
         \"block_bytes\": {BLOCK_BYTES},\n  \"sort_workers\": {SORT_WORKERS},\n  \
         \"prefetch_depth\": {PREFETCH_DEPTH},\n  \
         \"reference\": {{\"kernel\": \"radix\", \"codec\": \"copy\", \"io_backend\": \"serial\"}},\n  \
         \"upgraded\": {{\"kernel\": \"ips4o\", \"codec\": \"zerocopy\", \"io_backend\": \"batched\"}},\n  \
         \"speedup_upgraded\": {speedup:.4},\n  \"rows\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write("BENCH_wallclock.json", &json).expect("write BENCH_wallclock.json");
    println!("wrote BENCH_wallclock.json");

    if args.selftest {
        // Identity is asserted per cell above (fingerprint + sortedness);
        // the throughput gate only applies at full scale.
        if n >= GATE_MIN_N {
            assert!(
                speedup >= SPEEDUP_GATE,
                "upgraded cell must be >= {SPEEDUP_GATE}x the reference, got {speedup:.2}x"
            );
        }
        println!("selftest ok");
    }
}
