//! Ablation A3: polyphase vs balanced k-way merge sort.
//!
//! The paper chooses polyphase "to get a (2m−1)-way merge without a
//! separate redistribution of runs" — the classic argument against the
//! balanced k-way sort, which gets only a T/2-way merge from the same T
//! files. This binary compares the two on the same file budget: block
//! I/Os, merge passes, comparisons and virtual time, across the size
//! ladder and a tape-count sweep. Replacement selection (longer initial
//! runs) is included as the classic run-formation refinement, and the
//! §2 distribution sort as the other I/O-optimal paradigm.

use std::time::Instant;

use cluster::charge::Work;
use cluster::{Charger, CpuModel, TimePolicy};
use extsort::{ExtSortConfig, RunFormation, SortReport};
use hetsort_bench::{fmt_secs, print_table, Args};
use pdm::{Disk, DiskModel};
use sim::Jitter;
use workloads::{generate_to_disk, Benchmark, Layout};

enum Algo {
    Polyphase,
    Balanced,
    Distribution,
}

fn run_once(n: u64, tapes: usize, algo: Algo, rf: RunFormation, seed: u64) -> (f64, SortReport) {
    // 4 KiB blocks keep even the --quick sizes genuinely out-of-core.
    let block_bytes = 4 * 1024;
    let mem = ((n / 16) as usize).max(tapes * block_bytes / 4);
    let disk = Disk::in_memory(block_bytes).with_model(DiskModel::scsi_2000());
    let mut charger = Charger::new(
        CpuModel::alpha_533(),
        1.0,
        Jitter::none(),
        disk.clone(),
        TimePolicy::Modeled,
    );
    generate_to_disk(&disk, "input", Benchmark::Uniform, seed, Layout::single(n)).unwrap();
    charger.reset();
    let cfg = ExtSortConfig::new(mem)
        .with_tapes(tapes)
        .with_run_formation(rf);
    let t0 = Instant::now();
    let report = match algo {
        Algo::Polyphase => {
            extsort::polyphase_sort::<u32>(&disk, "input", "out", "a", &cfg).unwrap()
        }
        Algo::Balanced => {
            extsort::balanced_kway_sort::<u32>(&disk, "input", "out", "a", &cfg).unwrap()
        }
        Algo::Distribution => {
            extsort::distribution_sort::<u32>(&disk, "input", "out", "a", &cfg).unwrap()
        }
    };
    charger.charge_section(
        Work {
            comparisons: report.comparisons,
            key_ops: report.key_ops,
            moves: report.records * (report.merge_phases as u64 + 1),
        },
        t0.elapsed(),
    );
    charger.sync_io();
    (charger.now().as_secs(), report)
}

fn main() {
    let args = Args::parse();

    // Size ladder at the paper's 16 tapes.
    let mut rows = Vec::new();
    for &n in &args.size_ladder() {
        for (name, algo, rf) in [
            ("polyphase/chunk", Algo::Polyphase, RunFormation::ChunkSort),
            ("balanced/chunk", Algo::Balanced, RunFormation::ChunkSort),
            (
                "polyphase/replsel",
                Algo::Polyphase,
                RunFormation::ReplacementSelection,
            ),
            ("distribution", Algo::Distribution, RunFormation::ChunkSort),
        ] {
            let (t, r) = run_once(n, 16, algo, rf, args.seed);
            rows.push(vec![
                n.to_string(),
                name.to_string(),
                r.initial_runs.to_string(),
                r.merge_phases.to_string(),
                r.io.total_blocks().to_string(),
                r.comparisons.to_string(),
                r.key_ops.to_string(),
                fmt_secs(t),
            ]);
        }
    }
    print_table(
        "Ablation A3 — sequential external sorts on the same 16-file budget",
        &[
            "N",
            "algorithm",
            "initial runs",
            "merge phases",
            "block I/Os",
            "comparisons",
            "key ops",
            "time (s)",
        ],
        &rows,
    );

    // Tape sweep at a fixed size: polyphase's fan-in advantage grows.
    let n = args.size_ladder()[args.size_ladder().len() / 2];
    let mut rows = Vec::new();
    for tapes in [4usize, 6, 8, 12, 16] {
        let (tp, rp) = run_once(
            n,
            tapes,
            Algo::Polyphase,
            RunFormation::ChunkSort,
            args.seed,
        );
        let (tb, rb) = run_once(n, tapes, Algo::Balanced, RunFormation::ChunkSort, args.seed);
        rows.push(vec![
            tapes.to_string(),
            format!("{} / {}", tapes - 1, (tapes / 2).max(2)),
            rp.io.total_blocks().to_string(),
            rb.io.total_blocks().to_string(),
            fmt_secs(tp),
            fmt_secs(tb),
        ]);
    }
    print_table(
        &format!("Tape sweep at N = {n} (fan-in: polyphase T−1 vs balanced T/2)"),
        &[
            "tapes",
            "fan-in p/b",
            "poly I/Os",
            "bal I/Os",
            "poly time",
            "bal time",
        ],
        &rows,
    );

    if args.selftest {
        let n = *args.size_ladder().last().unwrap();
        let (tp, rp) = run_once(n, 8, Algo::Polyphase, RunFormation::ChunkSort, args.seed);
        let (tb, rb) = run_once(n, 8, Algo::Balanced, RunFormation::ChunkSort, args.seed);
        assert!(
            rp.io.total_blocks() <= rb.io.total_blocks(),
            "polyphase must not do more I/O than balanced on the same budget"
        );
        assert!(
            tp <= tb * 1.05,
            "polyphase time {tp:.2} vs balanced {tb:.2}"
        );
        let (_, rrs) = run_once(
            n,
            8,
            Algo::Polyphase,
            RunFormation::ReplacementSelection,
            args.seed,
        );
        assert!(
            rrs.initial_runs < rp.initial_runs,
            "replacement selection must form fewer runs"
        );
        let (_, rd) = run_once(n, 8, Algo::Distribution, RunFormation::ChunkSort, args.seed);
        assert!(
            rd.io.total_blocks() < 3 * rp.io.total_blocks(),
            "distribution sort must stay within a small constant of polyphase: {} vs {}",
            rd.io.total_blocks(),
            rp.io.total_blocks()
        );
        println!("selftest ok: polyphase ≤ balanced on I/O; replacement selection halves runs; distribution sort I/O-comparable");
    }
}
