//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the experiment index). They share:
//!
//! * [`Args`] — a tiny flag parser (`--quick`, `--paper`, `--seed`,
//!   `--trials`, `--selftest`);
//! * [`print_table`] — GitHub-flavoured table output;
//! * [`sequential_polyphase_trial`] — the paper's Table 2 protocol: one
//!   node, one disk, a slowdown factor, a polyphase sort, a virtual time;
//! * [`repeat`] — runs a seeded closure `trials` times and summarizes.

use std::time::Instant;

use cluster::charge::Work;
use cluster::{Charger, CpuModel, TimePolicy};
use extsort::{ExtSortConfig, SortKernel, SortReport};
use pdm::{Disk, DiskModel, ScratchDir};
use sim::{Jitter, Summary};
use workloads::{generate_to_disk, Benchmark, Layout};

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Scale down to CI-sized inputs.
    pub quick: bool,
    /// Use the paper's full input sizes (slow; release build recommended).
    pub paper: bool,
    /// Master seed.
    pub seed: u64,
    /// Trials per configuration (the paper uses 30; default is smaller).
    pub trials: usize,
    /// Assert the paper-shape claims instead of only printing.
    pub selftest: bool,
    /// Use real files instead of in-memory disks.
    pub files: bool,
    /// Restrict splitter-selection sweeps to one strategy (`flat` or
    /// `grouped`); `None` sweeps both. Only the `scale` bench reads it.
    pub splitter: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            quick: false,
            paper: false,
            seed: 2002,
            trials: 5,
            selftest: false,
            files: false,
            splitter: None,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags.
    pub fn parse() -> Args {
        let mut args = Args::default();
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--paper" => args.paper = true,
                "--selftest" => args.selftest = true,
                "--files" => args.files = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer")
                }
                "--trials" => {
                    args.trials = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--trials needs an integer")
                }
                "--splitter" => {
                    let v = it.next().expect("--splitter needs flat or grouped");
                    assert!(
                        v == "flat" || v == "grouped",
                        "unknown --splitter {v:?} (flat or grouped)"
                    );
                    args.splitter = Some(v);
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --quick | --paper | --seed N | --trials N | --selftest | \
                         --files | --splitter flat|grouped"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        args
    }

    /// Picks an input-size ladder: `quick` → small, default → medium,
    /// `paper` → the paper's 2²¹…2²⁵ records.
    pub fn size_ladder(&self) -> Vec<u64> {
        if self.paper {
            vec![1 << 21, 1 << 22, 1 << 23, 1 << 24, 1 << 25]
        } else if self.quick {
            vec![1 << 14, 1 << 15, 1 << 16]
        } else {
            vec![1 << 17, 1 << 18, 1 << 19, 1 << 20, 1 << 21]
        }
    }

    /// The Table 3 problem size for this scale.
    pub fn table3_n(&self) -> u64 {
        if self.paper {
            1 << 24
        } else if self.quick {
            1 << 16
        } else {
            1 << 20
        }
    }
}

/// Prints a GitHub-flavoured markdown table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", headers.join(" | "));
    println!(
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    println!();
}

/// Runs `f(seed)` for `trials` different seeds and summarizes the returned
/// observable.
pub fn repeat(trials: usize, base_seed: u64, mut f: impl FnMut(u64) -> f64) -> Summary {
    let mut s = Summary::new();
    for t in 0..trials {
        s.push(f(base_seed.wrapping_add(t as u64 * 0x9E37)));
    }
    s
}

/// The default memory budget for a given problem size: out-of-core by a
/// factor of 16 (so polyphase really merges), but never too small for a
/// 16-tape streaming merge at 32 KiB blocks.
pub fn default_mem(n: u64) -> usize {
    ((n / 16) as usize).max(16 * 16 * 1024)
}

/// One run of the paper's Table 2 protocol: a single node with the given
/// slowdown sorts `n` uniform records with polyphase merge sort; returns
/// the virtual time in seconds and the sort report.
///
/// The kernel is pinned to [`SortKernel::Comparison`]: the paper's 2002
/// Alpha calibration (`CpuModel::alpha_533`) prices a comparison sort, so
/// the Table 2/3 reproductions must not silently switch to the radix fast
/// path. Use [`sequential_polyphase_trial_kernel`] to measure a specific
/// kernel (the `kernel_speedup` bench compares both).
#[allow(clippy::too_many_arguments)] // a flat experiment-parameter list reads best
pub fn sequential_polyphase_trial(
    n: u64,
    mem_records: usize,
    tapes: usize,
    slowdown: f64,
    seed: u64,
    jitter_sigma: f64,
    use_files: bool,
    bench: Benchmark,
) -> (f64, SortReport) {
    sequential_polyphase_trial_kernel(
        n,
        mem_records,
        tapes,
        slowdown,
        seed,
        jitter_sigma,
        use_files,
        bench,
        SortKernel::Comparison,
    )
}

/// [`sequential_polyphase_trial`] with an explicit in-core sort kernel.
#[allow(clippy::too_many_arguments)] // a flat experiment-parameter list reads best
pub fn sequential_polyphase_trial_kernel(
    n: u64,
    mem_records: usize,
    tapes: usize,
    slowdown: f64,
    seed: u64,
    jitter_sigma: f64,
    use_files: bool,
    bench: Benchmark,
    kernel: SortKernel,
) -> (f64, SortReport) {
    let block_bytes = 32 * 1024;
    let scratch;
    let disk = if use_files {
        scratch = Some(ScratchDir::new("seqsort").expect("scratch dir"));
        Disk::on_files(scratch.as_ref().unwrap().path(), block_bytes)
    } else {
        scratch = None;
        Disk::in_memory(block_bytes)
    }
    .with_model(DiskModel::scsi_2000());
    let _keep = scratch;

    let jitter = Jitter::new(seed, (jitter_sigma * slowdown.sqrt()).min(0.9));
    let mut charger = Charger::new(
        CpuModel::alpha_533(),
        slowdown,
        jitter,
        disk.clone(),
        TimePolicy::Modeled,
    );
    generate_to_disk(&disk, "input", bench, seed, Layout::single(n)).expect("generate");
    charger.reset(); // generation is not part of the measured time

    let cfg = ExtSortConfig::new(mem_records)
        .with_tapes(tapes)
        .with_kernel(kernel);
    let t0 = Instant::now();
    let report =
        extsort::polyphase_sort::<u32>(&disk, "input", "output", "seq", &cfg).expect("sort");
    charger.charge_section(
        Work {
            comparisons: report.comparisons,
            key_ops: report.key_ops,
            moves: report.records * (report.merge_phases as u64 + 1),
        },
        t0.elapsed(),
    );
    charger.sync_io();
    (charger.now().as_secs(), report)
}

/// Formats seconds like the paper's tables (5 decimal places).
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.5}")
}

/// Formats a ratio with 5 decimals (the paper's `S(max)` column).
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.5}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_ladders() {
        let d = Args::default();
        assert_eq!(d.size_ladder().len(), 5);
        let q = Args {
            quick: true,
            ..Args::default()
        };
        assert!(q.size_ladder().iter().all(|&n| n <= 1 << 16));
        let p = Args {
            paper: true,
            ..Args::default()
        };
        assert_eq!(*p.size_ladder().last().unwrap(), 1 << 25);
    }

    #[test]
    fn repeat_summarizes() {
        let s = repeat(4, 10, |seed| seed as f64);
        assert_eq!(s.count(), 4);
        assert!(s.stddev() > 0.0);
    }

    #[test]
    fn sequential_trial_runs() {
        let (t, report) =
            sequential_polyphase_trial(1 << 14, 1 << 16, 4, 1.0, 7, 0.0, false, Benchmark::Uniform);
        assert!(t > 0.0);
        assert_eq!(report.records, 1 << 14);
    }

    #[test]
    fn slowdown_scales_sequential_time() {
        let run = |slowdown| {
            sequential_polyphase_trial(
                1 << 14,
                1 << 16,
                4,
                slowdown,
                7,
                0.0,
                false,
                Benchmark::Uniform,
            )
            .0
        };
        let fast = run(1.0);
        let slow = run(4.0);
        let ratio = slow / fast;
        assert!(
            (3.9..4.1).contains(&ratio),
            "slowdown 4 should quadruple the time, got {ratio}"
        );
    }

    #[test]
    fn default_mem_is_out_of_core() {
        assert!(default_mem(1 << 24) < (1 << 24) as usize);
        assert!(default_mem(1 << 10) >= 16 * 16 * 1024);
    }
}
