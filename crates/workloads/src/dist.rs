//! The benchmark catalogue.

use std::fmt;

/// The eight benchmark inputs (plus one duplicates extra).
///
/// Numbering follows the order the harness reports; benchmark 0 is the one
/// whose absolute timings the paper's tables print.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 0 — independent uniform 32-bit keys.
    Uniform,
    /// 1 — sum-of-4-uniforms "Gaussian" keys (Helman–JáJá–Bader `[G]`).
    Gaussian,
    /// 2 — every key equal (the pathological duplicates case).
    Zero,
    /// 3 — each node's block cycles through the `p` key ranges in ascending
    /// order (`[B]`: already bucket-sorted, pivots look "free").
    BucketSorted,
    /// 4 — nodes form groups of `g`; each block only contains keys from its
    /// group's ranges (`[g-G]`: adversarial for sampling).
    GGroup,
    /// 5 — node `i` holds exactly one key range chosen by the staggered
    /// permutation (`[S]`: maximally skewed initial placement).
    Staggered,
    /// 6 — globally sorted ascending.
    Sorted,
    /// 7 — globally sorted descending.
    ReverseSorted,
    /// 8 (extra) — Zipf(1.1)-distributed ranks over 4096 distinct keys:
    /// heavy duplicates with a skewed histogram.
    ZipfDuplicates,
}

impl Benchmark {
    /// All benchmarks, in id order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Uniform,
        Benchmark::Gaussian,
        Benchmark::Zero,
        Benchmark::BucketSorted,
        Benchmark::GGroup,
        Benchmark::Staggered,
        Benchmark::Sorted,
        Benchmark::ReverseSorted,
        Benchmark::ZipfDuplicates,
    ];

    /// The paper's "eight benchmarks" (without the Zipf extra).
    pub const PAPER_EIGHT: [Benchmark; 8] = [
        Benchmark::Uniform,
        Benchmark::Gaussian,
        Benchmark::Zero,
        Benchmark::BucketSorted,
        Benchmark::GGroup,
        Benchmark::Staggered,
        Benchmark::Sorted,
        Benchmark::ReverseSorted,
    ];

    /// Numeric id (0–8).
    pub fn id(self) -> usize {
        Self::ALL.iter().position(|&b| b == self).expect("in ALL")
    }

    /// Benchmark from its id.
    ///
    /// # Panics
    /// Panics if `id > 8`.
    pub fn from_id(id: usize) -> Benchmark {
        Self::ALL[id]
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Uniform => "uniform",
            Benchmark::Gaussian => "gaussian",
            Benchmark::Zero => "zero",
            Benchmark::BucketSorted => "bucket-sorted",
            Benchmark::GGroup => "g-group",
            Benchmark::Staggered => "staggered",
            Benchmark::Sorted => "sorted",
            Benchmark::ReverseSorted => "reverse-sorted",
            Benchmark::ZipfDuplicates => "zipf-duplicates",
        }
    }

    /// Whether the benchmark intentionally contains massive duplication.
    pub fn duplicate_heavy(self) -> bool {
        matches!(self, Benchmark::Zero | Benchmark::ZipfDuplicates)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Counts the highest multiplicity of any key (the `d` in the paper's
/// `U + d` duplicates bound). Sorts a copy; intended for test-sized data.
pub fn max_duplicate_count(data: &[u32]) -> u64 {
    if data.is_empty() {
        return 0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_unstable();
    let mut best = 1u64;
    let mut cur = 1u64;
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            cur += 1;
            best = best.max(cur);
        } else {
            cur = 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_id(b.id()), b);
        }
        assert_eq!(Benchmark::Uniform.id(), 0);
        assert_eq!(Benchmark::ZipfDuplicates.id(), 8);
    }

    #[test]
    fn paper_eight_excludes_zipf() {
        assert_eq!(Benchmark::PAPER_EIGHT.len(), 8);
        assert!(!Benchmark::PAPER_EIGHT.contains(&Benchmark::ZipfDuplicates));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn duplicate_flags() {
        assert!(Benchmark::Zero.duplicate_heavy());
        assert!(Benchmark::ZipfDuplicates.duplicate_heavy());
        assert!(!Benchmark::Uniform.duplicate_heavy());
    }

    #[test]
    fn max_duplicates() {
        assert_eq!(max_duplicate_count(&[]), 0);
        assert_eq!(max_duplicate_count(&[1]), 1);
        assert_eq!(max_duplicate_count(&[1, 2, 3]), 1);
        assert_eq!(max_duplicate_count(&[2, 1, 2, 3, 2]), 3);
        assert_eq!(max_duplicate_count(&[5; 10]), 10);
    }
}
