//! Benchmark input distributions.
//!
//! The paper evaluates "eight different benchmarks corresponding to eight
//! different inputs" without defining them; its citations (refs. 17, 18, 30)
//! use the canonical sorting-benchmark suites of Helman–JáJá–Bader and the
//! CM-2 study, so we implement that suite: benchmarks 0–7 below, plus a
//! duplicate-heavy Zipf extra used by the duplicates ablation. Benchmark 0
//! (uniform) is the one whose absolute numbers the paper prints.
//!
//! Inputs are generated **per node block**: several distributions are
//! defined relative to which processor initially holds a record (bucket
//! sorted, staggered, g-group), and heterogeneous clusters hold *unequal*
//! block sizes, so generators take the node rank and the global layout.
//! Everything is deterministic from `(seed, benchmark, node)`.

pub mod contend;
pub mod dist;
pub mod gen;

pub use contend::{contended_readers, ContendedReadOutcome};
pub use dist::{max_duplicate_count, Benchmark};
pub use gen::{generate_block, generate_into, generate_to_disk, generate_whole, Layout};
