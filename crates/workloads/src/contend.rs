//! Contended-I/O microbenchmark shape: many small concurrent readers on one
//! disk.
//!
//! The sorting benchmarks stream a few large files; the shared-disk
//! contention model's worst case is the opposite shape — lots of *small*
//! readers interleaving requests on one spindle, each arrival evicting the
//! head position the previous stream left behind. This generator builds that
//! shape deterministically: `readers` files on one disk, drained
//! round-robin one record at a time, so every block fetch lands between two
//! fetches from other streams.
//!
//! The walk itself is ordinary metered I/O — the returned
//! [`ContendedReadOutcome`] carries the delta plus both prices (dedicated
//! vs. shared at the observed stream count), so benches and tests can show
//! the queue penalty a device pays without touching virtual clocks.

use pdm::{Disk, IoSnapshot, PdmResult};
use sim::SimDuration;

/// What one contended round-robin read pass produced.
#[derive(Debug, Clone)]
pub struct ContendedReadOutcome {
    /// Records drained across all streams.
    pub records: u64,
    /// The metered I/O delta of the pass (identical for every device model —
    /// contention is pure pricing).
    pub io: IoSnapshot,
    /// Peak concurrently-open streams the disk observed during the pass.
    pub peak_streams: usize,
    /// The delta priced as a lone stream ([`pdm::DiskModel::service_time`]).
    pub dedicated: SimDuration,
    /// The delta priced with every reader contending
    /// ([`pdm::DiskModel::shared_service_time`] at `peak_streams`).
    pub shared: SimDuration,
}

impl ContendedReadOutcome {
    /// Queueing delay the device charges this shape: `shared − dedicated`.
    pub fn queue_penalty(&self) -> SimDuration {
        self.shared - self.dedicated
    }
}

/// Runs the many-small-readers shape: writes `readers` files of
/// `records_per_reader` keyed records (deterministic in `seed`), opens them
/// all concurrently, and drains them round-robin one record at a time.
///
/// # Errors
/// Propagates any I/O error from the underlying disk.
pub fn contended_readers(
    disk: &Disk,
    readers: usize,
    records_per_reader: usize,
    seed: u64,
) -> PdmResult<ContendedReadOutcome> {
    let readers = readers.max(1);
    let names: Vec<String> = (0..readers).map(|i| format!("contend{i}")).collect();
    for (i, name) in names.iter().enumerate() {
        let data: Vec<u32> = (0..records_per_reader as u32)
            .map(|r| {
                r.wrapping_mul(2654435761)
                    .wrapping_add(seed as u32 ^ i as u32)
            })
            .collect();
        disk.write_file(name, &data)?;
    }

    disk.stats().reset_peak_streams();
    let before = disk.stats().snapshot();
    let mut open: Vec<_> = names
        .iter()
        .map(|n| disk.open_reader::<u32>(n))
        .collect::<PdmResult<Vec<_>>>()?;
    let mut records = 0u64;
    // Round-robin: each visit takes one record, so consecutive block fetches
    // belong to different streams — the adversarial arrival order.
    while !open.is_empty() {
        let mut i = 0;
        while i < open.len() {
            match open[i].next_record()? {
                Some(_) => {
                    records += 1;
                    i += 1;
                }
                None => {
                    open.remove(i);
                }
            }
        }
    }
    let io = disk.stats().snapshot().delta(&before);
    let peak_streams = disk.stats().peak_streams() as usize;
    let model = disk.model();
    Ok(ContendedReadOutcome {
        records,
        io,
        peak_streams,
        dedicated: model.service_time(&io),
        shared: model.shared_service_time(&io, peak_streams),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm::DiskModel;

    #[test]
    fn round_robin_opens_every_stream_concurrently() {
        let disk = Disk::in_memory(64);
        let out = contended_readers(&disk, 8, 100, 7).unwrap();
        assert_eq!(out.records, 8 * 100);
        assert_eq!(out.peak_streams, 8);
        assert_eq!(out.io.blocks_read, 8 * 100u64.div_ceil(16));
    }

    #[test]
    fn scsi_pays_a_queue_penalty_nvme_does_not() {
        let scsi = Disk::in_memory(64).with_model(DiskModel::scsi_2000());
        let s = contended_readers(&scsi, 8, 100, 7).unwrap();
        assert!(
            s.queue_penalty() > SimDuration::ZERO,
            "a queue-depth-1 device must charge the interleaved streams"
        );
        let nvme = Disk::in_memory(64).with_model(DiskModel::nvme_modern());
        let n = contended_readers(&nvme, 8, 100, 7).unwrap();
        assert_eq!(
            n.queue_penalty(),
            SimDuration::ZERO,
            "8 streams fit in NVMe's queue"
        );
        // Same shape, same metered I/O: contention is pure pricing.
        assert_eq!(s.io, n.io);
    }

    #[test]
    fn deeper_contention_costs_more_on_shallow_queues() {
        let model = DiskModel::scsi_2000();
        let few =
            contended_readers(&Disk::in_memory(64).with_model(model.clone()), 2, 400, 3).unwrap();
        let many = contended_readers(&Disk::in_memory(64).with_model(model), 16, 50, 3).unwrap();
        // Equal data volume, same device: more interleaved streams means a
        // larger share of arrivals lose their head position.
        assert_eq!(few.records, many.records);
        assert!(many.queue_penalty() > few.queue_penalty());
    }
}
