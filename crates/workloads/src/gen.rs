//! Deterministic block generators.
//!
//! A [`Layout`] describes one node's slice of the global input: the node
//! rank, the cluster width, the block length, the block's global offset and
//! the global total. Generators are pure functions of
//! `(seed, benchmark, layout)`, so any node can (re)generate its block
//! independently — exactly how the harness seeds a cluster without shipping
//! data around.

use pdm::{Disk, PdmResult};
use sim::rng::{Pcg64, Rng, Zipf};
use sim::SplitMix64;

use crate::dist::Benchmark;

/// One node's position in the global input.
#[derive(Debug, Clone, Copy)]
pub struct Layout {
    /// Node rank.
    pub node: usize,
    /// Cluster width `p`.
    pub p: usize,
    /// Records in this node's block.
    pub len: u64,
    /// Global index of the block's first record.
    pub offset: u64,
    /// Global record count `n`.
    pub total: u64,
}

impl Layout {
    /// Layouts for a whole cluster given per-node share sizes.
    pub fn cluster(shares: &[u64]) -> Vec<Layout> {
        let p = shares.len();
        let total: u64 = shares.iter().sum();
        let mut offset = 0;
        shares
            .iter()
            .enumerate()
            .map(|(node, &len)| {
                let l = Layout {
                    node,
                    p,
                    len,
                    offset,
                    total,
                };
                offset += len;
                l
            })
            .collect()
    }

    /// A single-node layout covering everything.
    pub fn single(n: u64) -> Layout {
        Layout {
            node: 0,
            p: 1,
            len: n,
            offset: 0,
            total: n,
        }
    }
}

/// Streams node `layout.node`'s block for `bench` into `emit`.
pub fn generate_into(bench: Benchmark, seed: u64, layout: Layout, mut emit: impl FnMut(u32)) {
    let mut rng = Pcg64::with_stream(
        seed ^ SplitMix64::mix(bench.id() as u64),
        layout.node as u64,
    );
    let p = layout.p.max(1) as u64;
    // Key-range width when the key space is cut into p slabs.
    let width = (1u64 << 32) / p;
    match bench {
        Benchmark::Uniform => {
            for _ in 0..layout.len {
                emit(rng.next_u32());
            }
        }
        Benchmark::Gaussian => {
            // Average of four uniforms (Helman–JáJá–Bader's [G] input).
            for _ in 0..layout.len {
                let s: u64 = (0..4).map(|_| rng.next_u32() as u64).sum();
                emit((s / 4) as u32);
            }
        }
        Benchmark::Zero => {
            for _ in 0..layout.len {
                emit(0xBEEF);
            }
        }
        Benchmark::BucketSorted => {
            // The block ascends through all p slabs: record j sits in slab
            // floor(j·p/len), uniformly within the slab.
            for j in 0..layout.len {
                // `j < layout.len`, so the division is safe.
                let slab = j * p / layout.len;
                emit((slab * width + rng.below(width.max(1))) as u32);
            }
        }
        Benchmark::GGroup => {
            // Nodes form groups of g = max(2, p/2); a block only carries
            // keys from its own group's slabs, cycling among them.
            let g = (p / 2).max(2).min(p);
            let group = layout.node as u64 / g;
            for j in 0..layout.len {
                let slab = (group * g + (j % g)) % p;
                emit((slab * width + rng.below(width.max(1))) as u32);
            }
        }
        Benchmark::Staggered => {
            // Node i holds exactly one slab, chosen by the staggered
            // permutation: i < p/2 → slab 2i+1, else slab 2(i − p/2).
            let i = layout.node as u64;
            let slab = if i < p / 2 {
                2 * i + 1
            } else {
                2 * (i - p / 2)
            } % p;
            for _ in 0..layout.len {
                emit((slab * width + rng.below(width.max(1))) as u32);
            }
        }
        Benchmark::Sorted => {
            for j in 0..layout.len {
                emit(global_rank_key(layout.offset + j, layout.total));
            }
        }
        Benchmark::ReverseSorted => {
            for j in 0..layout.len {
                let g = layout.offset + j;
                emit(global_rank_key(layout.total - 1 - g, layout.total));
            }
        }
        Benchmark::ZipfDuplicates => {
            let distinct = 4096.min(layout.total.max(1)) as usize;
            let zipf = Zipf::new(distinct, 1.1);
            for _ in 0..layout.len {
                let rank = zipf.sample(&mut rng) as u64;
                // Spread the distinct keys over the key space (order
                // destroyed on purpose — only multiplicity matters).
                emit(SplitMix64::mix(rank) as u32);
            }
        }
    }
}

/// Maps a global rank to a key that preserves order and spans the key
/// space (distinct while `total ≤ 2³²`).
fn global_rank_key(rank: u64, total: u64) -> u32 {
    if total <= 1 {
        return 0;
    }
    // Scale rank into [0, 2^32) monotonically.
    (((rank as u128) << 32) / total as u128) as u32
}

/// Generates one node's block into memory.
///
/// ```
/// use workloads::{generate_block, Benchmark, Layout};
///
/// let layouts = Layout::cluster(&[100, 400]); // heterogeneous shares
/// let block = generate_block(Benchmark::Sorted, 7, layouts[1]);
/// assert_eq!(block.len(), 400);
/// assert!(block.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn generate_block(bench: Benchmark, seed: u64, layout: Layout) -> Vec<u32> {
    let mut out = Vec::with_capacity(layout.len as usize);
    generate_into(bench, seed, layout, |x| out.push(x));
    out
}

/// Generates one node's block straight onto a disk file (streaming; never
/// holds more than a block buffer in memory).
pub fn generate_to_disk(
    disk: &Disk,
    name: &str,
    bench: Benchmark,
    seed: u64,
    layout: Layout,
) -> PdmResult<u64> {
    let mut writer = disk.create_writer::<u32>(name)?;
    let mut err = None;
    generate_into(bench, seed, layout, |x| {
        if err.is_none() {
            if let Err(e) = writer.push(x) {
                err = Some(e);
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    writer.finish()
}

/// Generates the whole input (all nodes concatenated) into memory — for
/// tests and single-node experiments.
pub fn generate_whole(bench: Benchmark, seed: u64, shares: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    for layout in Layout::cluster(shares) {
        generate_into(bench, seed, layout, |x| out.push(x));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::max_duplicate_count;
    use pdm::Disk;

    fn layout4(node: usize, len: u64) -> Layout {
        Layout {
            node,
            p: 4,
            len,
            offset: node as u64 * len,
            total: 4 * len,
        }
    }

    #[test]
    fn deterministic_per_seed_and_node() {
        for bench in Benchmark::ALL {
            let a = generate_block(bench, 7, layout4(1, 500));
            let b = generate_block(bench, 7, layout4(1, 500));
            assert_eq!(a, b, "{bench} not deterministic");
            let c = generate_block(bench, 8, layout4(1, 500));
            if !matches!(
                bench,
                Benchmark::Zero | Benchmark::Sorted | Benchmark::ReverseSorted
            ) {
                assert_ne!(a, c, "{bench} ignored the seed");
            }
        }
    }

    #[test]
    fn lengths_respected() {
        for bench in Benchmark::ALL {
            assert_eq!(generate_block(bench, 1, layout4(0, 123)).len(), 123);
            assert_eq!(generate_block(bench, 1, layout4(3, 0)).len(), 0);
        }
    }

    #[test]
    fn sorted_is_globally_sorted_across_nodes() {
        let shares = [100u64, 100, 400, 400]; // heterogeneous shares
        let whole = generate_whole(Benchmark::Sorted, 3, &shares);
        assert!(whole.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(whole.len(), 1000);
    }

    #[test]
    fn reverse_sorted_is_globally_descending() {
        let whole = generate_whole(Benchmark::ReverseSorted, 3, &[250, 250, 250, 250]);
        assert!(whole.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn zero_is_constant() {
        let block = generate_block(Benchmark::Zero, 1, layout4(2, 100));
        assert!(block.iter().all(|&x| x == block[0]));
    }

    #[test]
    fn staggered_block_fits_one_slab() {
        for node in 0..4 {
            let block = generate_block(Benchmark::Staggered, 5, layout4(node, 1000));
            let width = (1u64 << 32) / 4;
            let slab = block[0] as u64 / width;
            assert!(
                block.iter().all(|&x| x as u64 / width == slab),
                "node {node} leaked outside its slab"
            );
        }
    }

    #[test]
    fn staggered_slabs_cover_everything() {
        // The staggered permutation must hit all p slabs across nodes.
        let width = (1u64 << 32) / 4;
        let mut seen = std::collections::HashSet::new();
        for node in 0..4 {
            let block = generate_block(Benchmark::Staggered, 5, layout4(node, 10));
            seen.insert(block[0] as u64 / width);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn bucket_sorted_block_is_ascending_by_slab() {
        let block = generate_block(Benchmark::BucketSorted, 6, layout4(1, 400));
        let width = (1u64 << 32) / 4;
        let slabs: Vec<u64> = block.iter().map(|&x| x as u64 / width).collect();
        assert!(
            slabs.windows(2).all(|w| w[0] <= w[1]),
            "slabs not ascending"
        );
        assert_eq!(slabs.first(), Some(&0));
        assert_eq!(slabs.last(), Some(&3));
    }

    #[test]
    fn gaussian_concentrates_in_middle() {
        let block = generate_block(Benchmark::Gaussian, 7, layout4(0, 10_000));
        let mid = block
            .iter()
            .filter(|&&x| (1u64 << 30) as u32 <= x && x <= (3u64 << 30) as u32)
            .count();
        // For a sum of 4 uniforms, ~96% lies in the middle half.
        assert!(mid as f64 / 10_000.0 > 0.9, "only {mid} in middle half");
    }

    #[test]
    fn zipf_has_heavy_duplicates_uniform_does_not() {
        let zipf = generate_block(Benchmark::ZipfDuplicates, 9, layout4(0, 10_000));
        let unif = generate_block(Benchmark::Uniform, 9, layout4(0, 10_000));
        assert!(max_duplicate_count(&zipf) > 500);
        assert!(max_duplicate_count(&unif) < 10);
    }

    #[test]
    fn ggroup_blocks_confined_to_group_slabs() {
        let p = 4;
        let g = 2u64;
        let width = (1u64 << 32) / p as u64;
        for node in 0..p {
            let block = generate_block(Benchmark::GGroup, 11, layout4(node, 500));
            let group = node as u64 / g;
            for &x in &block {
                let slab = x as u64 / width;
                assert!(
                    slab >= group * g && slab < (group + 1) * g,
                    "node {node} produced slab {slab} outside group {group}"
                );
            }
        }
    }

    #[test]
    fn disk_generation_matches_memory() {
        let disk = Disk::in_memory(64);
        let layout = layout4(2, 333);
        let n = generate_to_disk(&disk, "w", Benchmark::Uniform, 13, layout).unwrap();
        assert_eq!(n, 333);
        assert_eq!(
            disk.read_file::<u32>("w").unwrap(),
            generate_block(Benchmark::Uniform, 13, layout)
        );
    }

    #[test]
    fn cluster_layouts_partition_the_input() {
        let shares = [120u64, 360, 600];
        let layouts = Layout::cluster(&shares);
        assert_eq!(layouts.len(), 3);
        assert_eq!(layouts[0].offset, 0);
        assert_eq!(layouts[1].offset, 120);
        assert_eq!(layouts[2].offset, 480);
        assert!(layouts.iter().all(|l| l.total == 1080));
    }
}
