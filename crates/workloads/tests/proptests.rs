//! Property tests for the workload generators.

#![cfg(feature = "proptests")]
// Requires the `proptest` dev-dependency, not vendored offline; see README.

use proptest::prelude::*;

use workloads::{generate_block, generate_whole, Benchmark, Layout};

fn benchmark() -> impl Strategy<Value = Benchmark> {
    (0usize..9).prop_map(Benchmark::from_id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generators_are_deterministic(bench in benchmark(), seed in any::<u64>(), len in 0u64..2000) {
        let layout = Layout { node: 1, p: 4, len, offset: len, total: 4 * len };
        prop_assert_eq!(
            generate_block(bench, seed, layout),
            generate_block(bench, seed, layout)
        );
    }

    #[test]
    fn generators_respect_length(bench in benchmark(), seed in any::<u64>(), len in 0u64..3000) {
        let layout = Layout { node: 0, p: 2, len, offset: 0, total: 2 * len.max(1) };
        prop_assert_eq!(generate_block(bench, seed, layout).len() as u64, len);
    }

    #[test]
    fn nodes_generate_independent_blocks(seed in any::<u64>()) {
        // Different nodes of the same benchmark must not produce identical
        // random streams (they fork by rank).
        let l0 = Layout { node: 0, p: 4, len: 256, offset: 0, total: 1024 };
        let l1 = Layout { node: 1, p: 4, len: 256, offset: 256, total: 1024 };
        let a = generate_block(Benchmark::Uniform, seed, l0);
        let b = generate_block(Benchmark::Uniform, seed, l1);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn sorted_benchmarks_are_globally_monotone(
        shares in proptest::collection::vec(1u64..400, 1..6),
        seed in any::<u64>(),
    ) {
        let asc = generate_whole(Benchmark::Sorted, seed, &shares);
        prop_assert!(asc.windows(2).all(|w| w[0] <= w[1]));
        let desc = generate_whole(Benchmark::ReverseSorted, seed, &shares);
        prop_assert!(desc.windows(2).all(|w| w[0] >= w[1]));
        // They are reverses of each other (same key set).
        let mut r = desc.clone();
        r.reverse();
        prop_assert_eq!(asc, r);
    }

    #[test]
    fn whole_is_concatenation_of_blocks(
        bench in benchmark(),
        shares in proptest::collection::vec(1u64..300, 1..5),
        seed in any::<u64>(),
    ) {
        let whole = generate_whole(bench, seed, &shares);
        let mut cat = Vec::new();
        for layout in Layout::cluster(&shares) {
            cat.extend(generate_block(bench, seed, layout));
        }
        prop_assert_eq!(whole, cat);
    }
}
